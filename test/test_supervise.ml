(* Serve supervision: wedged-worker watchdog, admission control,
   drain, dead connections, and concurrent-connection determinism
   (DESIGN.md §17). *)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "unknown scenario %S" name

let resolver name =
  Option.map
    (fun (sc : Guest.Scenario.t) ->
      { Fleet.Serve.t_setup = sc.sc_setup;
        t_expected = Guest.Scenario.expected_label sc.sc_expected;
        t_matches = Guest.Scenario.matches sc.sc_expected })
    (Guest.Corpus.find name)

let make_input lines =
  let rest = ref lines in
  fun () ->
    match !rest with
    | [] -> None
    | l :: tl ->
      rest := tl;
      Some l

(* Serve one connection, collecting its responses in emission order.
   [output] is called under the connection lock, so the ref is safe
   even though the collector thread does some of the calls. *)
let run_script svc lines =
  let out = ref [] in
  let n =
    Fleet.Serve.serve_connection svc ~input:(make_input lines)
      ~output:(fun l -> out := l :: !out)
      ()
  in
  n, List.rev !out

let field line k =
  match Forensics.Jsonl.parse_line line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e
  | Ok fields -> List.assoc_opt k fields

let check_str line k expected =
  match field line k with
  | Some (Forensics.Jsonl.Str s) -> Alcotest.(check string) k expected s
  | _ -> Alcotest.failf "missing string field %S in %s" k line

(* ------------------------------------------------------------------ *)
(* watchdog: a wedged worker is timed out and replaced; the fleet
   keeps answering on the same slot                                    *)

let watchdog_case =
  Alcotest.test_case "wedged worker times out, respawns, fleet answers"
    `Quick (fun () ->
      let eng = Hth.Engine.create ~keep_events:false () in
      (* deadline-less default 0.25s catches the slow session; the
         verification job carries its own generous deadline *)
      let sup =
        Fleet.Supervisor.create ~deadline:0.25 ~poll:0.01 ~jobs:1
          [ "default", eng ]
      in
      (* ~14M-tick workload: far past the deadline on any host *)
      let slow = Guest.Perf_workload.scenario ~iters:20_000 in
      let j_slow = Fleet.Executor.job slow.sc_setup in
      (match Fleet.Supervisor.submit sup j_slow with
       | Fleet.Supervisor.Admitted s -> Alcotest.(check int) "seq" 0 s
       | _ -> Alcotest.fail "slow job refused");
      (match Fleet.Supervisor.next sup with
       | Some { o_result = Error (Hth.Error.Timeout { seconds }); _ } ->
         Alcotest.(check bool) "deadline echoed" true (seconds > 0.)
       | Some { o_result = Error e; _ } ->
         Alcotest.failf "expected timeout, got %s" (Hth.Error.to_string e)
       | Some { o_result = Ok _; _ } ->
         Alcotest.fail "slow job finished under the deadline?"
       | None -> Alcotest.fail "executor closed unexpectedly");
      (* the single worker slot was wedged; a fresh session can only
         succeed if the watchdog actually replaced the domain *)
      let j_fast =
        Fleet.Executor.job ~deadline:60. (find "pma").sc_setup
      in
      (match Fleet.Supervisor.submit sup j_fast with
       | Fleet.Supervisor.Admitted _ -> ()
       | _ -> Alcotest.fail "fast job refused");
      (match Fleet.Supervisor.next sup with
       | Some { o_result = Ok _; _ } -> ()
       | Some { o_result = Error e; _ } ->
         Alcotest.failf "post-respawn session failed: %s"
           (Hth.Error.to_string e)
       | None -> Alcotest.fail "executor closed unexpectedly");
      let h = Fleet.Supervisor.health sup in
      Alcotest.(check bool) "timeout counted" true
        (h.Fleet.Supervisor.h_timeouts >= 1);
      Alcotest.(check bool) "respawn counted" true
        (h.Fleet.Supervisor.h_respawns >= 1);
      Alcotest.(check bool) "pool respawns visible" true
        (h.Fleet.Supervisor.h_stats.Fleet.Pool.respawns >= 1);
      Alcotest.(check int) "nothing left in flight" 0
        h.Fleet.Supervisor.h_inflight;
      Fleet.Supervisor.shutdown sup)

(* ------------------------------------------------------------------ *)
(* admission: the global cap answers Overloaded, deterministically     *)

let overload_case =
  Alcotest.test_case "global in-flight cap refuses, then recovers"
    `Quick (fun () ->
      let eng = Hth.Engine.create ~keep_events:false () in
      let sup =
        Fleet.Supervisor.create ~max_inflight:2 ~jobs:1 [ "default", eng ]
      in
      let j () = Fleet.Executor.job (find "pma").sc_setup in
      let admitted x =
        match x with Fleet.Supervisor.Admitted s -> s | _ -> -1
      in
      Alcotest.(check int) "first admitted" 0
        (admitted (Fleet.Supervisor.submit sup (j ())));
      Alcotest.(check int) "second admitted" 1
        (admitted (Fleet.Supervisor.submit sup (j ())));
      (* in-flight = admitted and unconsumed, so the cap is exact and
         timing-free *)
      (match Fleet.Supervisor.submit sup (j ()) with
       | Fleet.Supervisor.Overloaded -> ()
       | _ -> Alcotest.fail "expected Overloaded at the cap");
      ignore (Fleet.Supervisor.next sup);
      Alcotest.(check int) "slot freed after release" 2
        (admitted (Fleet.Supervisor.submit sup (j ())));
      ignore (Fleet.Supervisor.next sup);
      ignore (Fleet.Supervisor.next sup);
      Fleet.Supervisor.begin_drain sup;
      (match Fleet.Supervisor.submit sup (j ()) with
       | Fleet.Supervisor.Draining -> ()
       | _ -> Alcotest.fail "expected Draining after begin_drain");
      Fleet.Supervisor.await_drain sup;
      Fleet.Supervisor.shutdown sup)

let closed_case =
  Alcotest.test_case "submit after close: try_submit None, submit raises"
    `Quick (fun () ->
      let eng = Hth.Engine.create ~keep_events:false () in
      let ex = Fleet.Executor.create ~jobs:1 [ "default", eng ] in
      Fleet.Executor.close ex;
      let j = Fleet.Executor.job (find "pma").sc_setup in
      Alcotest.(check bool) "try_submit refuses" true
        (Fleet.Executor.try_submit ex j = None);
      Alcotest.(check bool) "submit raises" true
        (try
           ignore (Fleet.Executor.submit ex j);
           false
         with Invalid_argument _ -> true);
      Fleet.Executor.shutdown ex)

(* ------------------------------------------------------------------ *)
(* serve: a client dying mid-stream leaves the fleet serving others    *)

let disconnect_case =
  Alcotest.test_case "client disconnect mid-stream isolates to its conn"
    `Quick (fun () ->
      let script =
        [ {|{"scenario":"pma","id":"a0"}|};
          {|{"scenario":"grabem","id":"a1"}|};
          {|{"scenario":"ls","id":"a2"}|} ]
      in
      (* serial reference for the surviving connection's bytes *)
      let reference =
        let svc = Fleet.Serve.create ~jobs:1 ~deadline:60. ~resolver () in
        let _, out = run_script svc script in
        Fleet.Serve.shutdown svc;
        out
      in
      let svc = Fleet.Serve.create ~jobs:2 ~deadline:60. ~resolver () in
      (* connection A's transport dies after the first response line *)
      let a_written = ref 0 in
      let a_total = ref (-1) in
      let a_thread =
        Thread.create
          (fun () ->
            a_total :=
              Fleet.Serve.serve_connection svc ~input:(make_input script)
                ~output:(fun _ ->
                  incr a_written;
                  if !a_written > 1 then failwith "client went away")
                ())
          ()
      in
      (* connection B streams the same script concurrently, in full *)
      let _, out_b = run_script svc script in
      Thread.join a_thread;
      Alcotest.(check int) "dead connection still drained" 3 !a_total;
      Alcotest.(check (list string)) "survivor byte-identical to serial"
        reference out_b;
      (* the service is still healthy for a later connection *)
      let _, out_c = run_script svc script in
      Alcotest.(check (list string)) "post-disconnect conn byte-identical"
        reference out_c;
      Fleet.Serve.shutdown svc)

(* ------------------------------------------------------------------ *)
(* two concurrent connections x 5 seeds: each connection's stream is
   byte-identical to serving it alone on a one-worker service          *)

let concurrent_identity_case =
  Alcotest.test_case "2 concurrent connections x 5 seeds vs serial"
    `Quick (fun () ->
      let script_a seed =
        [ Printf.sprintf {|{"scenario":"pma","seed":%d,"id":"a"}|} seed;
          Printf.sprintf
            {|{"scenario":"grabem","policy":"clips","seed":%d}|} seed;
          {|{"scenario":"vixie crontab"}|};
          Printf.sprintf {|{"scenario":"ls","seed":%d}|} seed ]
      in
      let script_b seed =
        [ {|{"scenario":"column"}|};
          Printf.sprintf {|{"scenario":"superforker","seed":%d}|} seed;
          Printf.sprintf {|{"scenario":"procex","seed":%d,"id":"b"}|} seed ]
      in
      let serial = Fleet.Serve.create ~jobs:1 ~deadline:60. ~resolver () in
      let shared = Fleet.Serve.create ~jobs:2 ~deadline:60. ~resolver () in
      List.iter
        (fun seed ->
          let _, ref_a = run_script serial (script_a seed) in
          let _, ref_b = run_script serial (script_b seed) in
          let got_a = ref [] in
          let th =
            Thread.create
              (fun () -> got_a := snd (run_script shared (script_a seed)))
              ()
          in
          let _, got_b = run_script shared (script_b seed) in
          Thread.join th;
          Alcotest.(check (list string))
            (Printf.sprintf "conn A seed %d" seed)
            ref_a !got_a;
          Alcotest.(check (list string))
            (Printf.sprintf "conn B seed %d" seed)
            ref_b got_b)
        [ 1; 2; 3; 4; 5 ];
      Fleet.Serve.shutdown shared;
      Fleet.Serve.shutdown serial)

(* ------------------------------------------------------------------ *)
(* drain: refused work answers shutting_down; ops still answer         *)

let drain_case =
  Alcotest.test_case "draining service answers shutting_down" `Quick
    (fun () ->
      let svc = Fleet.Serve.create ~jobs:1 ~deadline:60. ~resolver () in
      (* prove it worked before the drain *)
      let _, warm = run_script svc [ {|{"scenario":"pma"}|} ] in
      (match warm with
       | [ l ] -> check_str l "status" "ok"
       | _ -> Alcotest.fail "expected one warm response");
      Fleet.Serve.drain svc;
      let n, out =
        run_script svc
          [ {|{"scenario":"pma","id":"late"}|};
            {|{"op":"health"}|};
            {|{"op":"stats"}|} ]
      in
      Alcotest.(check int) "all three answered" 3 n;
      (match out with
       | [ a; b; c ] ->
         check_str a "status" "shutting_down";
         check_str a "id" "late";
         Alcotest.(check bool) "retry false" true
           (field a "retry" = Some (Forensics.Jsonl.Bool false));
         check_str b "status" "health";
         Alcotest.(check bool) "health says draining" true
           (field b "draining" = Some (Forensics.Jsonl.Bool true));
         check_str c "status" "stats";
         (match field c "requests" with
          | Some (Forensics.Jsonl.Int n) ->
            Alcotest.(check bool) "stats counted the warm request" true
              (n >= 1)
          | _ -> Alcotest.fail "stats response lacks requests")
       | _ -> Alcotest.fail "expected three responses");
      Fleet.Serve.shutdown svc)

(* ------------------------------------------------------------------ *)
(* default tick budget: budget-less requests degrade deterministically *)

let default_budget_case =
  Alcotest.test_case "default tick budget caps budget-less requests"
    `Quick (fun () ->
      let svc =
        Fleet.Serve.create ~jobs:1 ~deadline:60. ~default_ticks:200
          ~resolver ()
      in
      let _, out = run_script svc [ {|{"scenario":"superforker"}|} ] in
      Fleet.Serve.shutdown svc;
      (match out with
       | [ l ] ->
         check_str l "status" "ok";
         Alcotest.(check bool) "session degraded by the default budget"
           true
           (field l "degraded" = Some (Forensics.Jsonl.Bool true))
       | _ -> Alcotest.fail "expected one response");
      (* an explicit budget wins over the default *)
      let svc =
        Fleet.Serve.create ~jobs:1 ~deadline:60. ~default_ticks:200
          ~resolver ()
      in
      let _, out =
        run_script svc
          [ {|{"scenario":"superforker","budget":"ticks=2000000"}|} ]
      in
      Fleet.Serve.shutdown svc;
      match out with
      | [ l ] ->
        check_str l "status" "ok";
        Alcotest.(check bool) "explicit budget not overridden" true
          (field l "degraded" = Some (Forensics.Jsonl.Bool false))
      | _ -> Alcotest.fail "expected one response")

(* ------------------------------------------------------------------ *)
(* store_query: the fleet-forensics surface served over the protocol   *)

let check_int_at_least line k floor =
  match field line k with
  | Some (Forensics.Jsonl.Int n) ->
    Alcotest.(check bool) (Printf.sprintf "%s >= %d" k floor) true (n >= floor)
  | _ -> Alcotest.failf "missing int field %S in %s" k line

let store_query_case =
  Alcotest.test_case "store_query answers fleet queries over the warehouse"
    `Quick (fun () ->
      (* without a warehouse the op answers, but flags itself off *)
      let svc = Fleet.Serve.create ~jobs:1 ~deadline:60. ~resolver () in
      let _, out = run_script svc [ {|{"op":"store_query","id":"q"}|} ] in
      Fleet.Serve.shutdown svc;
      (match out with
       | [ l ] ->
         check_str l "status" "store_query";
         Alcotest.(check bool) "disabled without a warehouse" true
           (field l "enabled" = Some (Forensics.Jsonl.Bool false))
       | _ -> Alcotest.fail "expected one response");
      (* populate a store through the service, then query it.  The
         queries go on a second connection: serve_connection returning
         means every admitted run is already appended (durable before
         visible), so the second connection's answers are
         deterministic. *)
      let dir =
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "hth-serve-squery-%d" (Unix.getpid ()))
        in
        if Sys.file_exists d then
          ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)));
        d
      in
      let wh =
        match Store.Warehouse.open_ dir with
        | Ok wh -> wh
        | Error e -> Alcotest.failf "open_ %s: %s" dir (Hth.Error.to_string e)
      in
      let svc = Fleet.Serve.create ~jobs:2 ~deadline:60. ~store:wh ~resolver () in
      let _, runs =
        run_script svc
          [ {|{"scenario":"pma","id":"r0"}|};
            {|{"scenario":"grabem","id":"r1"}|} ]
      in
      List.iter (fun l -> check_str l "status" "ok") runs;
      let n, out =
        run_script svc
          [ {|{"op":"store_query","id":"q0"}|};
            {|{"op":"store_query","kind":"profile","limit":3,"id":"q1"}|};
            {|{"op":"store_query","kind":"diff","run":"pma@0","id":"q2"}|};
            {|{"op":"store_query","kind":"diff","id":"q3"}|};
            {|{"op":"store_query","kind":"bogus","id":"q4"}|};
            {|{"op":"store_query","scenario":"pma","id":"q5"}|} ]
      in
      Fleet.Serve.shutdown svc;
      Store.Warehouse.close wh;
      Alcotest.(check int) "all six answered" 6 n;
      match out with
      | [ q0; q1; q2; q3; q4; q5 ] ->
        check_str q0 "status" "store_query";
        check_str q0 "kind" "query";
        (match field q0 "runs" with
         | Some (Forensics.Jsonl.Int n) ->
           Alcotest.(check int) "unfiltered query sees both runs" 2 n
         | _ -> Alcotest.fail "q0 lacks runs");
        check_str q1 "kind" "profile";
        check_int_at_least q1 "blocks" 1;
        (match field q1 "profile" with
         | Some (Forensics.Jsonl.Str s) ->
           Alcotest.(check bool) "profile respects the row limit" true
             (List.length (String.split_on_char '\n' s) <= 3)
         | _ -> Alcotest.fail "q1 lacks profile rows");
        check_str q2 "kind" "diff";
        check_int_at_least q2 "compared" 1;
        check_str q3 "status" "bad_request";
        check_str q4 "status" "bad_request";
        check_str q5 "kind" "query";
        (match field q5 "hits" with
         | Some (Forensics.Jsonl.Str s) ->
           Alcotest.(check bool) "scenario filter names the pma run" true
             (Astring.String.is_infix ~affix:"pma@0" s)
         | _ -> Alcotest.fail "q5 lacks hits")
      | _ -> Alcotest.fail "expected six responses")

let suite =
  [ watchdog_case; overload_case; closed_case; disconnect_case;
    concurrent_identity_case; drain_case; default_budget_case;
    store_query_case ]
