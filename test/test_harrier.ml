(* Unit and integration tests for Harrier: shadow state, data-flow
   propagation, BB frequency attribution, resource tracking, routine
   short-circuiting, and the assembled monitor. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sp = Taint.Space.create ()
let tag_of l = Taint.Tagset.of_list sp l
let user = Taint.Source.User_input
let file_a = Taint.Source.File "/a"
let bin_x = Taint.Source.Binary "/bin/x"

let tagset =
  Alcotest.testable Taint.Tagset.pp Taint.Tagset.equal

(* ------------------------------------------------------------------ *)
(* Shadow                                                              *)

let test_shadow_regs () =
  let s = Harrier.Shadow.create ~space:sp () in
  Alcotest.check tagset "initially empty" Taint.Tagset.empty
    (Harrier.Shadow.reg s EAX);
  Harrier.Shadow.set_reg s EAX (tag_of [ user ]);
  Alcotest.check tagset "set/get" (tag_of [ user ])
    (Harrier.Shadow.reg s EAX);
  Alcotest.check tagset "others untouched" Taint.Tagset.empty
    (Harrier.Shadow.reg s EBX)

let test_shadow_memory () =
  let s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_byte s 100 (tag_of [ user ]);
  Harrier.Shadow.set_byte s 101 (tag_of [ file_a ]);
  Alcotest.check tagset "range unions" (tag_of [ user; file_a ])
    (Harrier.Shadow.range s 100 2);
  Harrier.Shadow.set_range s 100 2 Taint.Tagset.empty;
  check_int "empty tags are not stored" 0 (Harrier.Shadow.tagged_bytes s)

let test_shadow_clone () =
  let s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_byte s 5 (tag_of [ user ]);
  let c = Harrier.Shadow.clone s in
  Harrier.Shadow.set_byte c 5 (tag_of [ bin_x ]);
  Alcotest.check tagset "original unchanged" (tag_of [ user ])
    (Harrier.Shadow.byte s 5)

(* ------------------------------------------------------------------ *)
(* Dataflow                                                            *)

let machine_with insns =
  let img =
    Binary.Image.make ~path:"/t" ~kind:Binary.Image.Executable ~base:0x100
      ~text:(Array.of_list insns) ~sections:[] ~exports:[] ~relocs:[]
      ~needed:[] ~entry:0x100
  in
  let m = Vm.Machine.create () in
  Vm.Machine.map_image m img;
  Vm.Machine.set_eip m 0x100;
  Vm.Machine.set_reg m ESP 0xF000;
  m

let imm_tag = tag_of [ bin_x ]

let step_df s m insn = Harrier.Dataflow.step s m ~imm_tag insn

let test_df_mov_reg () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_reg s EBX (tag_of [ user ]);
  step_df s m (Mov (W, Reg EAX, Reg EBX));
  Alcotest.check tagset "reg copy replaces" (tag_of [ user ])
    (Harrier.Shadow.reg s EAX)

let test_df_mov_imm () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_reg s EAX (tag_of [ user ]);
  step_df s m (Mov (W, Reg EAX, Imm 4));
  Alcotest.check tagset "immediate brings BINARY and clears old" imm_tag
    (Harrier.Shadow.reg s EAX)

let test_df_mov_memory () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_byte s 0x2001 (tag_of [ user ]);
  Harrier.Shadow.set_byte s 0x2003 (tag_of [ file_a ]);
  step_df s m (Mov (W, Reg EAX, Isa.Operand.abs 0x2000));
  Alcotest.check tagset "word load unions 4 bytes"
    (tag_of [ user; file_a ])
    (Harrier.Shadow.reg s EAX);
  (* store spreads the tag over all four destination bytes *)
  step_df s m (Mov (W, Isa.Operand.abs 0x3000, Reg EAX));
  Alcotest.check tagset "store tags each byte" (tag_of [ user; file_a ])
    (Harrier.Shadow.byte s 0x3003)

let test_df_mov_byte () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_byte s 0x2000 (tag_of [ user ]);
  step_df s m (Mov (B, Isa.Operand.abs 0x3000, Isa.Operand.abs 0x2000));
  Alcotest.check tagset "byte copy" (tag_of [ user ])
    (Harrier.Shadow.byte s 0x3000);
  Alcotest.check tagset "only one byte" Taint.Tagset.empty
    (Harrier.Shadow.byte s 0x3001)

let test_df_alu_union () =
  (* the paper's example: add %ebx,%eax unions both sets *)
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_reg s EAX (tag_of [ user ]);
  Harrier.Shadow.set_reg s EBX (tag_of [ file_a ]);
  step_df s m (Add (Reg EAX, Reg EBX));
  Alcotest.check tagset "union" (tag_of [ user; file_a ])
    (Harrier.Shadow.reg s EAX);
  Alcotest.check tagset "source unchanged" (tag_of [ file_a ])
    (Harrier.Shadow.reg s EBX)

let test_df_cpuid () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  step_df s m Isa.Insn.Cpuid;
  List.iter
    (fun r ->
      Alcotest.check tagset "hardware tag"
        (tag_of [ Taint.Source.Hardware ])
        (Harrier.Shadow.reg s r))
    [ Isa.Reg.EAX; Isa.Reg.EBX; Isa.Reg.ECX; Isa.Reg.EDX ]

let test_df_push_pop () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_reg s EAX (tag_of [ user ]);
  (* push: the slot below esp gets eax's tag *)
  step_df s m (Push (Reg EAX));
  Alcotest.check tagset "pushed" (tag_of [ user ])
    (Harrier.Shadow.range s (0xF000 - 4) 4);
  (* pop with esp pointing at the slot *)
  Vm.Machine.set_reg m ESP (0xF000 - 4);
  step_df s m (Pop (Reg EBX));
  Alcotest.check tagset "popped" (tag_of [ user ])
    (Harrier.Shadow.reg s EBX)

let test_df_cmp_propagates_nothing () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_reg s EAX (tag_of [ user ]);
  step_df s m (Cmp (W, Reg EBX, Reg EAX));
  Alcotest.check tagset "cmp leaves dst alone" Taint.Tagset.empty
    (Harrier.Shadow.reg s EBX)

let test_df_call_clears_ret_slot () =
  let m = machine_with [] and s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shadow.set_range s (0xF000 - 4) 4 (tag_of [ user ]);
  step_df s m (Call (Imm 0x200));
  Alcotest.check tagset "return address untainted" Taint.Tagset.empty
    (Harrier.Shadow.range s (0xF000 - 4) 4)

(* ------------------------------------------------------------------ *)
(* Frequency                                                           *)

let test_freq_counting () =
  let f = Harrier.Freq.create () in
  Harrier.Freq.on_bb f ~pid:1 ~is_app:true 0x10;
  Harrier.Freq.on_bb f ~pid:1 ~is_app:true 0x10;
  Harrier.Freq.on_bb f ~pid:1 ~is_app:true 0x20;
  check_int "count per leader" 2 (Harrier.Freq.count f ~pid:1 0x10);
  check "attribution follows app" true
    (Harrier.Freq.attributed_bb f ~pid:1 = Some 0x20);
  check_int "event freq of attributed" 1
    (Harrier.Freq.event_frequency f ~pid:1)

let test_freq_library_attribution () =
  (* Fig. 3: shared-object blocks keep the last *app* block current *)
  let f = Harrier.Freq.create () in
  Harrier.Freq.on_bb f ~pid:1 ~is_app:true 0x10;
  Harrier.Freq.on_bb f ~pid:1 ~is_app:false 0x4000;
  Harrier.Freq.on_bb f ~pid:1 ~is_app:false 0x4010;
  check "library code not attributed" true
    (Harrier.Freq.attributed_bb f ~pid:1 = Some 0x10);
  check_int "library blocks not counted" 0
    (Harrier.Freq.count f ~pid:1 0x4000)

let test_freq_inherit_reset () =
  let f = Harrier.Freq.create () in
  Harrier.Freq.on_bb f ~pid:1 ~is_app:true 0x10;
  Harrier.Freq.inherit_from f ~parent:1 ~child:2;
  check_int "child inherits counts" 1 (Harrier.Freq.count f ~pid:2 0x10);
  check "child inherits attribution" true
    (Harrier.Freq.attributed_bb f ~pid:2 = Some 0x10);
  Harrier.Freq.reset f ~pid:1;
  check_int "parent reset" 0 (Harrier.Freq.count f ~pid:1 0x10);
  check_int "child unaffected" 1 (Harrier.Freq.count f ~pid:2 0x10)

(* ------------------------------------------------------------------ *)
(* Resources                                                           *)

let entry name origin : Harrier.Resources.entry =
  { e_kind = Harrier.Events.R_file; e_name = name; e_origin = origin;
    e_server_side = false; e_server = None }

let test_resources_lifecycle () =
  let r = Harrier.Resources.create () in
  Harrier.Resources.set r ~pid:1 ~fd:3 (entry "/f" (tag_of [ bin_x ]));
  check "get" true (Harrier.Resources.get r ~pid:1 ~fd:3 <> None);
  check "other pid isolated" true
    (Harrier.Resources.get r ~pid:2 ~fd:3 = None);
  Harrier.Resources.inherit_from r ~parent:1 ~child:2;
  check "inherited" true (Harrier.Resources.get r ~pid:2 ~fd:3 <> None);
  Harrier.Resources.remove r ~pid:1 ~fd:3;
  check "removed" true (Harrier.Resources.get r ~pid:1 ~fd:3 = None);
  check "child survives removal" true
    (Harrier.Resources.get r ~pid:2 ~fd:3 <> None)

let test_resources_fallback () =
  let r = Harrier.Resources.create () in
  let res =
    Harrier.Resources.resource_of r ~pid:1 ~fd:0
      ~fallback:Osim.Syscall.R_stdin
  in
  check "stdin fallback" true (res.r_name = "STDIN");
  let res =
    Harrier.Resources.resource_of r ~pid:1 ~fd:9
      ~fallback:(Osim.Syscall.R_file "/kernel-view")
  in
  check "kernel file fallback" true (res.r_name = "/kernel-view");
  Alcotest.check tagset "fallback has no origin" Taint.Tagset.empty
    res.r_origin

let test_resources_bind () =
  let r = Harrier.Resources.create () in
  Harrier.Resources.bind_origin r ~pid:1 ~fd:4 (tag_of [ bin_x ])
    "LocalHost:80";
  (match Harrier.Resources.bound r ~pid:1 ~fd:4 with
   | Some (tag, local) ->
     Alcotest.check tagset "bound origin" (tag_of [ bin_x ]) tag;
     check "local name" true (local = "LocalHost:80")
   | None -> Alcotest.fail "bound entry missing")

(* ------------------------------------------------------------------ *)
(* Short-circuit                                                       *)

let test_shortcircuit_frames () =
  let spec : Harrier.Shortcircuit.spec =
    { routine = "resolve";
      capture = (fun _ _ -> tag_of [ user ]);
      apply =
        (fun m shadow captured ->
          let result = Vm.Machine.get_reg m EAX in
          Harrier.Shadow.set_range shadow result 4 captured) }
  in
  let t = Harrier.Shortcircuit.create [ spec ] in
  let m = machine_with [] in
  let s = Harrier.Shadow.create ~space:sp () in
  (* simulate: Call at esp=0xF000 *)
  Vm.Machine.set_reg m ESP 0xF000;
  Harrier.Shortcircuit.on_call t ~routine:"resolve" m s ~ret_addr:0x123;
  (* inside the routine: esp after the call pushed the return address *)
  Vm.Machine.set_reg m ESP (0xF000 - 4);
  Vm.Machine.write_word m (0xF000 - 4) 0x123;
  Vm.Machine.set_reg m EAX 0x5000;  (* routine result pointer *)
  Harrier.Shortcircuit.on_ret t m s;
  Alcotest.check tagset "captured tag applied to result"
    (tag_of [ user ])
    (Harrier.Shadow.range s 0x5000 4)

let test_shortcircuit_inner_ret_ignored () =
  let spec : Harrier.Shortcircuit.spec =
    { routine = "r"; capture = (fun _ _ -> tag_of [ user ]);
      apply = (fun _ _ _ -> Alcotest.fail "applied on inner ret") }
  in
  let t = Harrier.Shortcircuit.create [ spec ] in
  let m = machine_with [] in
  let s = Harrier.Shadow.create ~space:sp () in
  Vm.Machine.set_reg m ESP 0xF000;
  Harrier.Shortcircuit.on_call t ~routine:"r" m s ~ret_addr:0x123;
  (* a nested call's ret: deeper stack, different return address *)
  Vm.Machine.set_reg m ESP (0xF000 - 12);
  Vm.Machine.write_word m (0xF000 - 12) 0x999;
  Harrier.Shortcircuit.on_ret t m s

let test_shortcircuit_unknown_routine () =
  let t = Harrier.Shortcircuit.create [] in
  let m = machine_with [] in
  let s = Harrier.Shadow.create ~space:sp () in
  Harrier.Shortcircuit.on_call t ~routine:"anything" m s ~ret_addr:1;
  Harrier.Shortcircuit.on_ret t m s  (* no frames: no-op *)

(* ------------------------------------------------------------------ *)
(* Monitor integration (via small sessions)                            *)

(* (data tag, per-source origins, target resource) of each non-stdio
   write *)
let transfer_events (r : Hth.Session.result) =
  List.filter_map
    (function
      | Harrier.Events.Transfer
          { data; sources; target; _ } when target.r_kind <> R_stdio ->
        Some (data, sources, target)
      | _ -> None)
    r.events

let test_monitor_binary_sections_tagged () =
  (* a program that copies its rodata to a user file: the transfer's
     data tag must be BINARY(program) *)
  let exe =
    let u = Asm.create ~path:"/bin/m" ~kind:Binary.Image.Executable
        ~base:0x1000 ()
    in
    Guest.Runtime.prologue u;
    Asm.asciz u "data" "hard";
    Asm.space u "fd" 4;
    Asm.label u "_start";
    Guest.Runtime.save_argv u 1 "__scratch";
    Guest.Runtime.sys_creat u ~path:(Asm.mlbl "__scratch");
    Asm.movl u (Asm.mlbl "fd") Asm.eax;
    Guest.Runtime.sys_write u ~fd:(Asm.mlbl "fd") ~buf:(Asm.lbl "data")
      ~len:(Asm.imm 4);
    Guest.Runtime.sys_exit u 0;
    Asm.hlt u;
    Asm.finalize u
  in
  let r =
    Hth.Session.run
      (Hth.Session.setup ~programs:[ exe ] ~argv:[ "/bin/m"; "/out" ]
         ~main:"/bin/m" ())
  in
  match transfer_events r with
  | [ (data, _, target) ] ->
    check "data tagged BINARY" true
      (List.mem "/bin/m" (Taint.Tagset.binaries data));
    (* and the file name came from argv: USER_INPUT *)
    check "target named by user" true
      (Taint.Tagset.has_user_input target.r_origin)
  | _ -> Alcotest.fail "expected exactly one transfer"

let test_monitor_read_tags_buffer () =
  (* cat a file to another file: the transfer's source is FILE(src) *)
  let exe =
    let u = Asm.create ~path:"/bin/m" ~kind:Binary.Image.Executable
        ~base:0x1000 ()
    in
    Guest.Runtime.prologue u;
    Asm.asciz u "src" "/in";
    Asm.asciz u "dst" "/out";
    Asm.space u "fd" 4;
    Asm.space u "n" 4;
    Asm.label u "_start";
    Guest.Runtime.sys_open u ~path:(Asm.lbl "src") ~flags:0;
    Asm.movl u (Asm.mlbl "fd") Asm.eax;
    Guest.Runtime.sys_read u ~fd:(Asm.mlbl "fd") ~buf:(Asm.lbl "__buf")
      ~len:(Asm.imm 32);
    Asm.movl u (Asm.mlbl "n") Asm.eax;
    Guest.Runtime.sys_creat u ~path:(Asm.lbl "dst");
    Asm.movl u (Asm.mlbl "fd") Asm.eax;
    Guest.Runtime.sys_write u ~fd:(Asm.mlbl "fd") ~buf:(Asm.lbl "__buf")
      ~len:(Asm.mlbl "n");
    Guest.Runtime.sys_exit u 0;
    Asm.hlt u;
    Asm.finalize u
  in
  let r =
    Hth.Session.run
      (Hth.Session.setup ~programs:[ exe ] ~files:[ "/in", "payload" ]
         ~main:"/bin/m" ())
  in
  match transfer_events r with
  | [ (data, sources, _) ] ->
    check "source is the file" true
      (List.mem "/in" (Taint.Tagset.files data));
    (* per-source name origin resolved from the open *)
    (match sources with
     | [ (Taint.Source.File "/in", origin) ] ->
       check "source name was hardcoded" true
         (List.mem "/bin/m" (Taint.Tagset.binaries origin))
     | _ -> Alcotest.fail "sources list wrong")
  | _ -> Alcotest.fail "expected exactly one transfer"

let test_monitor_event_meta () =
  let exe =
    let u = Asm.create ~path:"/bin/m" ~kind:Binary.Image.Executable
        ~base:0x1000 ()
    in
    Asm.asciz u "prog" "/bin/true";
    Asm.label u "_start";
    Guest.Runtime.sys_execve u ~path:(Asm.lbl "prog") ();
    Guest.Runtime.sys_exit u 1;
    Asm.hlt u;
    Asm.finalize u
  in
  let r =
    Hth.Session.run
      (Hth.Session.setup
         ~programs:[ exe; Guest.Common.trivial "/bin/true" ]
         ~main:"/bin/m" ())
  in
  match
    List.find_opt
      (function Harrier.Events.Exec _ -> true | _ -> false)
      r.events
  with
  | Some (Harrier.Events.Exec { meta; _ }) ->
    check "time progressed" true (meta.time > 0);
    check_int "bb executed once" 1 meta.freq;
    check_int "attributed to the entry block" 0x1000 meta.addr;
    check_int "pid" 1 meta.pid
  | _ -> Alcotest.fail "no exec event"

let test_monitor_fork_inherits_taint () =
  (* the parent reads a hard-coded file; the *child* writes the buffer —
     the taint must survive the fork (shadow cloned, resources
     inherited) *)
  let exe =
    let u = Asm.create ~path:"/bin/m" ~kind:Binary.Image.Executable
        ~base:0x1000 ()
    in
    Guest.Runtime.prologue u;
    Asm.asciz u "src" "/secret";
    Asm.asciz u "dst" "/leak";
    Asm.space u "fd" 4;
    Asm.space u "n" 4;
    Asm.label u "_start";
    Guest.Runtime.sys_open u ~path:(Asm.lbl "src") ~flags:0;
    Asm.movl u (Asm.mlbl "fd") Asm.eax;
    Guest.Runtime.sys_read u ~fd:(Asm.mlbl "fd") ~buf:(Asm.lbl "__buf")
      ~len:(Asm.imm 32);
    Asm.movl u (Asm.mlbl "n") Asm.eax;
    Guest.Runtime.sys_fork u;
    Asm.testl u Asm.eax Asm.eax;
    Asm.jnz u "parent";
    (* child *)
    Guest.Runtime.sys_creat u ~path:(Asm.lbl "dst");
    Asm.movl u (Asm.mlbl "fd") Asm.eax;
    Guest.Runtime.sys_write u ~fd:(Asm.mlbl "fd") ~buf:(Asm.lbl "__buf")
      ~len:(Asm.mlbl "n");
    Guest.Runtime.sys_exit u 0;
    Asm.label u "parent";
    Guest.Runtime.sys_exit u 0;
    Asm.hlt u;
    Asm.finalize u
  in
  let r =
    Hth.Session.run
      (Hth.Session.setup ~programs:[ exe ]
         ~files:[ "/secret", "classified-bytes" ] ~main:"/bin/m" ())
  in
  match
    List.find_map
      (function
        | Harrier.Events.Transfer
            { data; sources; target = { r_name = "/leak"; _ }; meta; _ } ->
          Some (data, sources, meta)
        | _ -> None)
      r.events
  with
  | Some (data, sources, meta) ->
    check "child pid performed the write" true (meta.pid = 2);
    check "taint crossed the fork" true
      (List.mem "/secret" (Taint.Tagset.files data));
    (match sources with
     | [ (Taint.Source.File "/secret", origin) ] ->
       check "resource origin inherited" true
         (List.mem "/bin/m" (Taint.Tagset.binaries origin))
     | _ -> Alcotest.fail "sources wrong")
  | None -> Alcotest.fail "child write not observed"

let suite =
  [ Alcotest.test_case "shadow registers" `Quick test_shadow_regs;
    Alcotest.test_case "shadow memory ranges" `Quick test_shadow_memory;
    Alcotest.test_case "shadow clone isolation" `Quick test_shadow_clone;
    Alcotest.test_case "dataflow mov reg" `Quick test_df_mov_reg;
    Alcotest.test_case "dataflow immediate is BINARY" `Quick
      test_df_mov_imm;
    Alcotest.test_case "dataflow word load/store" `Quick
      test_df_mov_memory;
    Alcotest.test_case "dataflow byte copy" `Quick test_df_mov_byte;
    Alcotest.test_case "dataflow ALU union" `Quick test_df_alu_union;
    Alcotest.test_case "dataflow cpuid is HARDWARE" `Quick test_df_cpuid;
    Alcotest.test_case "dataflow push/pop" `Quick test_df_push_pop;
    Alcotest.test_case "dataflow cmp propagates nothing" `Quick
      test_df_cmp_propagates_nothing;
    Alcotest.test_case "dataflow call clears return slot" `Quick
      test_df_call_clears_ret_slot;
    Alcotest.test_case "frequency counting" `Quick test_freq_counting;
    Alcotest.test_case "frequency library attribution (Fig. 3)" `Quick
      test_freq_library_attribution;
    Alcotest.test_case "frequency inherit and reset" `Quick
      test_freq_inherit_reset;
    Alcotest.test_case "resources lifecycle" `Quick
      test_resources_lifecycle;
    Alcotest.test_case "resources fallback" `Quick test_resources_fallback;
    Alcotest.test_case "resources bind origin" `Quick test_resources_bind;
    Alcotest.test_case "short-circuit frames" `Quick
      test_shortcircuit_frames;
    Alcotest.test_case "short-circuit ignores inner rets" `Quick
      test_shortcircuit_inner_ret_ignored;
    Alcotest.test_case "short-circuit unknown routine" `Quick
      test_shortcircuit_unknown_routine;
    Alcotest.test_case "monitor tags binary sections" `Quick
      test_monitor_binary_sections_tagged;
    Alcotest.test_case "monitor tags read buffers" `Quick
      test_monitor_read_tags_buffer;
    Alcotest.test_case "monitor event metadata" `Quick
      test_monitor_event_meta;
    Alcotest.test_case "monitor fork inherits taint" `Quick
      test_monitor_fork_inherits_taint ]
