let run_group scenarios () =
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      let r = Guest.Scenario.run sc in
      let v = Hth.Report.verdict r in
      Fmt.epr "=== %s: expected %s, got %s@."
        sc.sc_name (Guest.Scenario.expected_label sc.sc_expected)
        (Hth.Report.verdict_label v);
      List.iter (fun w -> Fmt.epr "%s@." (Secpert.Warning.to_string w)) r.distinct;
      Fmt.epr "%a@." (Osim.Kernel.pp_report) r.os_report;
      Alcotest.(check bool) (sc.sc_name ^ " verdict") true
        (Guest.Scenario.matches sc.sc_expected v))
    scenarios

let () =
  Alcotest.run "hth"
    [ "taint", Test_taint.suite;
      "expert", Test_expert.suite;
      "vm", Test_vm.suite;
      "asm", Test_asm.suite;
      "osim", Test_osim.suite;
      "harrier", Test_harrier.suite;
      "secpert", Test_secpert.suite;
      "properties", Test_props.suite;
      "session", Test_session.suite;
      "engine", Test_engine.suite;
      "extensions", Test_extensions.suite;
      "clips-policy", Test_clips_policy.suite;
      "trace", Test_trace.suite;
      "chaos", Test_chaos.suite;
      "golden", Test_golden.suite;
      "forensics", Test_forensics.suite;
      "fleet", Test_fleet.suite;
      "supervise", Test_supervise.suite;
      "dormant", Test_dormant.suite;
      "store", Test_store.suite;
      "table1",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Characterize.scenarios) ];
      "table4",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Micro_exec.scenarios) ];
      "table5",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Micro_fork.scenarios) ];
      "table6",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Micro_flow.scenarios) ];
      "table7",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Trusted.scenarios) ];
      "table8",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Exploits.scenarios) ];
      "macro",
      [ Alcotest.test_case "smoke" `Quick
          (run_group Guest.Macro.scenarios) ] ]
