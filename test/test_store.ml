(* The trace warehouse: framing, compression, indexing, manifest and
   fleet determinism.

   The contract under test (DESIGN.md §18): a stored segment
   reconstructs the session's JSONL trace byte-for-byte, the embedded
   index agrees with what a full parse of the trace would find, a
   truncated or corrupted segment fails with a typed Load_failure (never
   a silently shorter answer), and two warehouses built from the same
   corpus — whatever the worker count — are byte-identical, manifest
   and segments alike. *)

open QCheck

let golden_scenarios =
  [ "ElmExploit"; "nlspath"; "procex"; "grabem"; "vixie crontab"; "pma";
    "superforker"; "ls"; "column" ]

(* three dormant families in their trigger-hit mode: the longest, most
   index-dense traces the corpus produces *)
let dormant_scenarios =
  [ "sleeper daemon triggered"; "logic bomb triggered";
    "update client triggered" ]

let corpus = golden_scenarios @ dormant_scenarios

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %S missing from corpus" name

(* Run one session with the tee sink — the exact wiring `hth_run --trace
   --store` and the batch executor use — returning the reference trace
   bytes and the sealed segment. *)
let capture ?chunk_bytes (sc : Guest.Scenario.t) =
  let buf = Buffer.create 4096 in
  let w = Store.Segment.Writer.create ?chunk_bytes () in
  let trace =
    Obs.Trace.chunk_target ?threshold:chunk_bytes (fun chunk ->
        Buffer.add_string buf chunk;
        Store.Segment.Writer.add_chunk w chunk)
  in
  (match Hth.Session.run_outcome ~trace sc.sc_setup with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "%s: session failed: %s" sc.sc_name
      (Hth.Error.to_string e));
  (Buffer.contents buf, Store.Segment.Writer.seal w)

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

(* ------------------------------------------------------------------ *)
(* deflate                                                             *)

let test_deflate_units () =
  let cases =
    [ "";
      "a";
      "hello, world";
      String.make 100_000 'x';
      String.concat "" (List.init 4_000 (fun i -> Printf.sprintf "{\"step\":%d,\"ev\":\"flow\"}\n" i));
      String.init 256 Char.chr;
      String.init 70_000 (fun i -> Char.chr (i * 7919 mod 256)) ]
  in
  List.iter
    (fun s ->
      match Store.Deflate.decompress (Store.Deflate.compress s) with
      | Ok s' ->
        Alcotest.(check int)
          (Printf.sprintf "round-trip length (input %d bytes)"
             (String.length s))
          (String.length s) (String.length s');
        Alcotest.(check bool) "round-trip bytes" true (String.equal s s')
      | Error m -> Alcotest.failf "decompress failed: %s" m)
    cases;
  (* repetitive input must actually shrink — the warehouse's whole
     point *)
  let rep = String.concat "" (List.init 1_000 (fun _ -> "abcabcabc\n")) in
  Alcotest.(check bool) "repetitive input compresses" true
    (String.length (Store.Deflate.compress rep) < String.length rep / 4)

let prop_deflate_roundtrip =
  Test.make ~count:300 ~name:"store: deflate round-trips any string"
    (Gen.oneof
       [ Gen.string_size ~gen:Gen.char (Gen.int_bound 2_000);
         (* repetition-heavy: exercises the LZ77 match path *)
         Gen.map
           (fun (w, n) -> String.concat "" (List.init (n + 1) (fun _ -> w)))
           Gen.(pair (string_size ~gen:printable (int_bound 12))
                  (int_bound 400)) ]
     |> make)
    (fun s ->
      match Store.Deflate.decompress (Store.Deflate.compress s) with
      | Ok s' -> String.equal s s'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* segment round-trip over the corpus                                  *)

let test_corpus_roundtrip () =
  List.iter
    (fun name ->
      let sc = find name in
      let raw, sealed = capture sc in
      Alcotest.(check int)
        (name ^ ": sealed step count = trace lines")
        (count_lines raw) sealed.Store.Segment.s_steps;
      Alcotest.(check int)
        (name ^ ": sealed raw_bytes")
        (String.length raw) sealed.Store.Segment.s_raw_bytes;
      match Store.Segment.load ~path:name sealed.Store.Segment.s_bytes with
      | Error e -> Alcotest.failf "%s: load failed: %s" name (Hth.Error.to_string e)
      | Ok l ->
        Alcotest.(check bool)
          (name ^ ": reconstructed trace byte-identical")
          true
          (String.equal raw l.Store.Segment.l_raw);
        Alcotest.(check bool)
          (name ^ ": load returns the sealed index")
          true
          (l.Store.Segment.l_index = sealed.Store.Segment.s_index);
        (* the cheap path agrees with the full decode *)
        (match
           Store.Segment.load_index ~path:name sealed.Store.Segment.s_bytes
         with
        | Error e ->
          Alcotest.failf "%s: load_index failed: %s" name
            (Hth.Error.to_string e)
        | Ok (ix, steps, raw_bytes) ->
          Alcotest.(check bool)
            (name ^ ": load_index = load's index")
            true
            (ix = l.Store.Segment.l_index);
          Alcotest.(check int) (name ^ ": load_index steps")
            sealed.Store.Segment.s_steps steps;
          Alcotest.(check int)
            (name ^ ": load_index raw_bytes")
            (String.length raw) raw_bytes))
    corpus

(* The index must agree with a full parse of the trace: same warnings,
   same embedded counters, same hot blocks, and every name posting's
   step really is a flow line naming it. *)
let test_index_matches_trace () =
  List.iter
    (fun name ->
      let sc = find name in
      let raw, sealed = capture sc in
      let ix = sealed.Store.Segment.s_index in
      let lines =
        String.split_on_char '\n' raw
        |> List.filter (fun l -> l <> "")
        |> List.map (fun l ->
               match Forensics.Jsonl.parse_line l with
               | Ok fields -> fields
               | Error m -> Alcotest.failf "%s: bad trace line: %s" name m)
      in
      let ev fields =
        match List.assoc_opt "ev" fields with
        | Some (Forensics.Jsonl.Str s) -> s
        | _ -> ""
      in
      let count k = List.length (List.filter (fun f -> ev f = k) lines) in
      Alcotest.(check int)
        (name ^ ": one index warning per warning line")
        (count "warning")
        (List.length ix.Store.Segment.ix_warnings);
      Alcotest.(check int)
        (name ^ ": one index counter per counter line")
        (count "counter")
        (List.length ix.Store.Segment.ix_counters);
      Alcotest.(check int)
        (name ^ ": one index block per hot_block line")
        (count "hot_block")
        (List.length ix.Store.Segment.ix_blocks);
      (* spot-check name postings against the trace by step *)
      let nth_fields step = List.nth lines step in
      List.iter
        (fun (posted, steps) ->
          List.iter
            (fun step ->
              let fields = nth_fields step in
              Alcotest.(check bool)
                (Printf.sprintf "%s: step %d is a flow line naming %S" name
                   step posted)
                true
                (ev fields = "flow"
                && List.exists
                     (function
                       | ( ("res_name" | "target_name" | "server_name"
                           | "call"),
                           Forensics.Jsonl.Str v ) -> v = posted
                       | _ -> false)
                     fields))
            steps)
        ix.Store.Segment.ix_names)
    [ "pma"; "sleeper daemon triggered" ]

(* ------------------------------------------------------------------ *)
(* corruption: complete-or-typed-failure, never a shorter answer       *)

let is_load_failure = function
  | Error (Hth.Error.Load_failure _) -> true
  | _ -> false

let test_corruption () =
  let sc = find "pma" in
  let _, sealed = capture sc in
  let bytes = sealed.Store.Segment.s_bytes in
  let n = String.length bytes in
  (* truncation at assorted depths: inside the magic, inside a frame
     header, inside a payload, just before the end frame *)
  List.iter
    (fun keep ->
      Alcotest.(check bool)
        (Printf.sprintf "truncation to %d/%d bytes is a Load_failure" keep n)
        true
        (is_load_failure
           (Store.Segment.load ~path:"trunc" (String.sub bytes 0 keep))))
    [ 0; 4; String.length Store.Frame.magic + 3; n / 2; n - 1 ];
  (* a flipped payload byte must fail the checksum *)
  let flipped =
    String.mapi
      (fun i c -> if i = n / 2 then Char.chr (Char.code c lxor 0x40) else c)
      bytes
  in
  Alcotest.(check bool) "bit flip is a Load_failure" true
    (is_load_failure (Store.Segment.load ~path:"flip" flipped));
  (* garbage after the end frame is corruption, not slack *)
  Alcotest.(check bool) "trailing garbage is a Load_failure" true
    (is_load_failure (Store.Segment.load ~path:"trail" (bytes ^ "x")))

(* ------------------------------------------------------------------ *)
(* index consistency under arbitrary line-aligned chunkings            *)

(* The sink only ever hands the writer whole lines, but chunk sizes
   vary with the threshold and flush timing.  Whatever the chunking,
   the reconstructed bytes and the semantic index (warnings, names,
   blocks, counters) must not change; only ix_chunks — the physical
   layout — may, and even it must tile the trace exactly. *)
let prop_index_chunking_invariant =
  let sc = find "pma" in
  let raw, reference = capture sc in
  let lines =
    String.split_on_char '\n' raw
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l -> l ^ "\n")
  in
  Test.make ~count:60
    ~name:"store: index invariant under line-aligned re-chunking"
    (make Gen.(list_size (int_range 1 20) (int_range 1 30)))
    (fun sizes ->
      let w = Store.Segment.Writer.create () in
      let rec feed lines sizes =
        match lines with
        | [] -> ()
        | _ ->
          let k, rest_sizes =
            match sizes with
            | s :: tl -> (s, tl)
            | [] -> (max 1 (List.length lines), [])
          in
          let chunk = List.filteri (fun i _ -> i < k) lines in
          let rest = List.filteri (fun i _ -> i >= k) lines in
          Store.Segment.Writer.add_chunk w (String.concat "" chunk);
          feed rest rest_sizes
      in
      feed lines sizes;
      let sealed = Store.Segment.Writer.seal w in
      let ix = sealed.Store.Segment.s_index
      and ref_ix = reference.Store.Segment.s_index in
      let reconstructs =
        match Store.Segment.load ~path:"prop" sealed.Store.Segment.s_bytes with
        | Ok l -> String.equal l.Store.Segment.l_raw raw
        | Error _ -> false
      in
      let chunks_tile =
        (* raw offsets strictly advance (chunks are nonempty) and steps
           tile [0, s_steps) exactly *)
        let rec offsets_ok = function
          | [] -> true
          | [ (c : Store.Segment.chunk) ] ->
            c.c_raw_off <= sealed.Store.Segment.s_raw_bytes
          | (a : Store.Segment.chunk) :: (b :: _ as tl) ->
            a.c_raw_off < b.c_raw_off && offsets_ok tl
        in
        let rec steps_ok step = function
          | [] -> step = sealed.Store.Segment.s_steps
          | (c : Store.Segment.chunk) :: tl ->
            c.c_first_step = step && steps_ok (step + c.c_lines) tl
        in
        steps_ok 0 sealed.Store.Segment.s_index.Store.Segment.ix_chunks
        && offsets_ok sealed.Store.Segment.s_index.Store.Segment.ix_chunks
      in
      reconstructs && chunks_tile
      && ix.Store.Segment.ix_warnings = ref_ix.Store.Segment.ix_warnings
      && ix.Store.Segment.ix_names = ref_ix.Store.Segment.ix_names
      && ix.Store.Segment.ix_blocks = ref_ix.Store.Segment.ix_blocks
      && ix.Store.Segment.ix_counters = ref_ix.Store.Segment.ix_counters)

(* ------------------------------------------------------------------ *)
(* warehouse determinism across worker counts                          *)

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then
      Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)) |> ignore;
    d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Build a warehouse from the 12-scenario corpus on a [jobs]-worker
   fleet: segments sealed on the workers, appended in submission order
   by the coordinator — the same wiring `hth_run batch --store` uses. *)
let build_store ~jobs dir =
  let engine = Hth.Engine.create ~keep_events:false () in
  let ex = Fleet.Executor.create ~jobs [ "default", engine ] in
  let outcomes =
    Fleet.Executor.run_all ex
      (List.map
         (fun name ->
           Fleet.Executor.job ~trace:true ~store:true (find name).sc_setup)
         corpus)
  in
  Fleet.Executor.shutdown ex;
  let wh =
    match Store.Warehouse.open_ dir with
    | Ok wh -> wh
    | Error e -> Alcotest.failf "open_ %s: %s" dir (Hth.Error.to_string e)
  in
  List.iter2
    (fun name (o : Fleet.Executor.outcome) ->
      let sc = find name in
      let sealed =
        match o.o_segment with
        | Some s -> s
        | None -> Alcotest.failf "%s: no segment in outcome" name
      in
      let verdict, matched =
        match o.o_result with
        | Ok r ->
          let v = Hth.Report.verdict r in
          (Hth.Report.verdict_label v, Guest.Scenario.matches sc.sc_expected v)
        | Error e -> ("error:" ^ Hth.Error.kind e, false)
      in
      let entry =
        { Store.Manifest.e_run = name;
          e_scenario = name;
          e_policy = "native";
          e_seed = None;
          e_fault = None;
          e_verdict = verdict;
          e_expected = Guest.Scenario.expected_label sc.sc_expected;
          e_match = matched;
          e_warnings = 0;
          e_distinct = 0;
          e_degraded = false;
          e_steps = 0;
          e_raw_bytes = 0;
          e_framed_bytes = 0;
          e_digest =
            Store.Manifest.digest sealed.Store.Segment.s_index.ix_counters;
          e_segment = "" }
      in
      ignore (Store.Warehouse.append wh ~entry ~sealed))
    corpus outcomes;
  Store.Warehouse.close wh;
  List.map
    (fun (o : Fleet.Executor.outcome) -> Option.get o.o_trace)
    outcomes

let test_store_determinism () =
  let d1 = fresh_dir "hth-store-j1" and d2 = fresh_dir "hth-store-j2" in
  let traces1 = build_store ~jobs:1 d1 in
  let traces2 = build_store ~jobs:2 d2 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: trace bytes identical across jobs"
           (List.nth corpus i))
        true (String.equal a b))
    (List.combine traces1 traces2);
  Alcotest.(check bool) "manifests byte-identical" true
    (String.equal
       (read_file (Filename.concat d1 "MANIFEST.jsonl"))
       (read_file (Filename.concat d2 "MANIFEST.jsonl")));
  let view =
    match Store.Warehouse.load d1 with
    | Ok v -> v
    | Error e -> Alcotest.failf "load: %s" (Hth.Error.to_string e)
  in
  List.iter
    (fun (e : Store.Manifest.entry) ->
      Alcotest.(check bool)
        (e.e_run ^ ": segment bytes identical across jobs")
        true
        (String.equal
           (read_file (Filename.concat d1 e.e_segment))
           (read_file (Filename.concat d2 e.e_segment))))
    view.v_entries;
  (* stored answers = live answers: the reconstructed trace is the
     trace the session wrote *)
  List.iteri
    (fun i (e : Store.Manifest.entry) ->
      match Store.Warehouse.raw_trace view e with
      | Error err -> Alcotest.failf "raw_trace: %s" (Hth.Error.to_string err)
      | Ok raw ->
        Alcotest.(check bool)
          (e.e_run ^ ": warehouse reconstructs the live trace")
          true
          (String.equal raw (List.nth traces1 i)))
    view.v_entries

(* Forensic answers from the store match the JSONL path byte-for-byte:
   the determinism gate's in-process twin. *)
let test_store_answers_match_jsonl () =
  let sc = find "pma" in
  let raw, sealed = capture sc in
  let from_store =
    match Store.Segment.load ~path:"pma" sealed.Store.Segment.s_bytes with
    | Ok l -> l.Store.Segment.l_raw
    | Error e -> Alcotest.failf "load: %s" (Hth.Error.to_string e)
  in
  let render source =
    match Forensics.Reader.of_string source with
    | Error m -> Alcotest.failf "reader: %s" m
    | Ok t ->
      let explain = Fmt.str "%a" Forensics.Chain.pp_chains (Forensics.Chain.explain t) in
      let profile =
        Fmt.str "%a"
          (fun ppf p -> Forensics.Profile.pp ~top:10 ppf p)
          (Forensics.Profile.of_trace t)
      in
      explain ^ "\n" ^ profile
  in
  Alcotest.(check string) "explain+profile identical from store"
    (render raw) (render from_store)

(* ------------------------------------------------------------------ *)
(* fleet queries                                                       *)

let test_fleet_queries () =
  let dir = fresh_dir "hth-store-q" in
  ignore (build_store ~jobs:2 dir);
  let view =
    match Store.Warehouse.load dir with
    | Ok v -> v
    | Error e -> Alcotest.failf "load: %s" (Hth.Error.to_string e)
  in
  (* verdict metadata predicate *)
  (match
     Store.Fleet_query.query view
       { Store.Fleet_query.no_filter with q_scenario = Some "pma" }
   with
  | Ok [ hit ] ->
    Alcotest.(check string) "scenario filter finds pma" "pma"
      hit.h_entry.e_scenario
  | Ok hits -> Alcotest.failf "expected 1 pma hit, got %d" (List.length hits)
  | Error e -> Alcotest.failf "query: %s" (Hth.Error.to_string e));
  (* index predicate with evidence steps *)
  (match
     Store.Fleet_query.query view
       { Store.Fleet_query.no_filter with q_severity = Some "HIGH" }
   with
  | Error e -> Alcotest.failf "query: %s" (Hth.Error.to_string e)
  | Ok hits ->
    Alcotest.(check bool) "severity query finds suspicious runs" true
      (List.length hits > 0);
    List.iter
      (fun (h : Store.Fleet_query.hit) ->
        Alcotest.(check bool)
          (h.h_entry.e_run ^ ": every hit carries evidence steps")
          true
          (h.h_steps <> [] && List.sort_uniq compare h.h_steps = h.h_steps))
      hits);
  (* a predicate nothing satisfies *)
  (match
     Store.Fleet_query.query view
       { Store.Fleet_query.no_filter with q_rule = Some "no-such-rule" }
   with
  | Ok [] -> ()
  | Ok hits -> Alcotest.failf "expected no hits, got %d" (List.length hits)
  | Error e -> Alcotest.failf "query: %s" (Hth.Error.to_string e));
  (* profile aggregates and orders deterministically *)
  (match Store.Fleet_query.profile view with
  | Error e -> Alcotest.failf "profile: %s" (Hth.Error.to_string e)
  | Ok blocks ->
    Alcotest.(check bool) "profile nonempty" true (blocks <> []);
    let rec sorted = function
      | (a : Store.Fleet_query.block) :: (b :: _ as tl) ->
        (a.b_count > b.b_count
        || (a.b_count = b.b_count && (a.b_pid, a.b_addr) < (b.b_pid, b.b_addr)))
        && sorted tl
      | _ -> true
    in
    Alcotest.(check bool) "profile order: count desc, then (pid,addr)" true
      (sorted blocks));
  (* diff vs fleet median: self-describing totals, missing run is typed *)
  (match Store.Fleet_query.diff view ~run:"pma" with
  | Error e -> Alcotest.failf "diff: %s" (Hth.Error.to_string e)
  | Ok (drifts, compared) ->
    Alcotest.(check bool) "diff compares a positive counter surface" true
      (compared > 0 && List.length drifts <= compared);
    List.iter
      (fun (d : Store.Fleet_query.drift) ->
        Alcotest.(check bool) (d.d_name ^ ": drift rows really drift") true
          (d.d_value <> d.d_median))
      drifts);
  match Store.Fleet_query.diff view ~run:"no-such-run" with
  | Error (Hth.Error.Load_failure _) -> ()
  | Error e ->
    Alcotest.failf "expected Load_failure, got %s" (Hth.Error.to_string e)
  | Ok _ -> Alcotest.fail "diff of a missing run must fail"

(* ------------------------------------------------------------------ *)
(* seeded qcheck wrapper (same idiom as test_props)                     *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s when int_of_string_opt (String.trim s) <> None ->
    int_of_string (String.trim s)
  | _ ->
    Random.self_init ();
    Random.int 1_000_000_000

let to_alcotest_seeded test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  let run () =
    try run ()
    with e ->
      Printf.eprintf
        "\n[qcheck] reproduce this failure with: QCHECK_SEED=%d dune \
         runtest --force\n\
         %!"
        seed;
      raise e
  in
  (name, speed, run)

let suite =
  [ Alcotest.test_case "deflate: unit round-trips" `Quick test_deflate_units;
    to_alcotest_seeded prop_deflate_roundtrip;
    Alcotest.test_case "segment: 12-scenario corpus round-trip" `Quick
      test_corpus_roundtrip;
    Alcotest.test_case "segment: index matches a full trace parse" `Quick
      test_index_matches_trace;
    Alcotest.test_case "segment: corruption is a typed Load_failure" `Quick
      test_corruption;
    to_alcotest_seeded prop_index_chunking_invariant;
    Alcotest.test_case "warehouse: byte-identical across jobs 1 and 2"
      `Quick test_store_determinism;
    Alcotest.test_case "store answers = jsonl answers" `Quick
      test_store_answers_match_jsonl;
    Alcotest.test_case "fleet queries: search, profile, diff" `Quick
      test_fleet_queries ]
