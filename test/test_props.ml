(* Property-based tests (qcheck) on the core data structures and
   invariants: tag sets, origin classification, values, s-expressions,
   the machine's memory, the assembler/VM against a reference
   interpreter, the filesystem, and engine refraction. *)

open QCheck
let sp = Taint.Space.create ()

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let source_gen =
  let open Gen in
  oneof
    [ return Taint.Source.User_input;
      return Taint.Source.Hardware;
      map (fun n -> Taint.Source.File ("/f" ^ string_of_int n)) (int_bound 5);
      map (fun n -> Taint.Source.Socket ("s" ^ string_of_int n)) (int_bound 5);
      map (fun n -> Taint.Source.Binary ("/b" ^ string_of_int n))
        (int_bound 5) ]

let source = make ~print:Taint.Source.to_string source_gen

let tagset_gen = Gen.map (Taint.Tagset.of_list sp) (Gen.list_size (Gen.int_bound 6) source_gen)

let tagset = make ~print:Taint.Tagset.to_string tagset_gen

let value_gen =
  let open Gen in
  sized @@ fix (fun self n ->
      if n = 0 then
        oneof
          [ map (fun s -> Expert.Value.Sym ("s" ^ string_of_int s)) (int_bound 9);
            map (fun s -> Expert.Value.Str (String.make (s mod 4) 'x')) (int_bound 9);
            map (fun i -> Expert.Value.Int i) small_signed_int ]
      else
        frequency
          [ 3, self 0;
            1, map (fun l -> Expert.Value.Lst l)
              (list_size (int_bound 3) (self (n / 2))) ])

let value = make ~print:Expert.Value.to_string value_gen

(* ------------------------------------------------------------------ *)
(* Tag sets form a semilattice                                         *)

let prop_union_commutes =
  Test.make ~name:"tagset union commutes" ~count:200 (pair tagset tagset)
    (fun (a, b) ->
      Taint.Tagset.equal ((Taint.Tagset.union sp) a b) ((Taint.Tagset.union sp) b a))

let prop_union_assoc =
  Test.make ~name:"tagset union associates" ~count:200
    (triple tagset tagset tagset) (fun (a, b, c) ->
      Taint.Tagset.equal
        ((Taint.Tagset.union sp) a ((Taint.Tagset.union sp) b c))
        ((Taint.Tagset.union sp) ((Taint.Tagset.union sp) a b) c))

let prop_union_idempotent =
  Test.make ~name:"tagset union idempotent" ~count:200 tagset (fun a ->
      Taint.Tagset.equal a ((Taint.Tagset.union sp) a a))

let prop_union_monotone =
  Test.make ~name:"union preserves membership" ~count:200
    (pair tagset tagset) (fun (a, b) ->
      Taint.Tagset.fold
        (fun s acc -> acc && Taint.Tagset.mem s ((Taint.Tagset.union sp) a b))
        a true)

let prop_of_list_set_semantics =
  Test.make ~name:"of_list deduplicates" ~count:200
    (list_of_size (Gen.int_bound 8) source) (fun l ->
      let t = (Taint.Tagset.of_list sp) l in
      Taint.Tagset.cardinal t
      = List.length (List.sort_uniq Taint.Source.compare l))

(* ------------------------------------------------------------------ *)
(* Interned tag sets agree with a reference Set.Make(Source) model     *)

module Ref_set = Set.Make (Taint.Source)

let same_as_model t model =
  Taint.Tagset.to_list t = Ref_set.elements model
  && Taint.Tagset.cardinal t = Ref_set.cardinal model
  && Taint.Tagset.is_empty t = Ref_set.is_empty model

let prop_interned_union_model =
  Test.make ~name:"interned union matches reference set union" ~count:300
    (pair (list_of_size (Gen.int_bound 8) source)
       (list_of_size (Gen.int_bound 8) source))
    (fun (l1, l2) ->
      let t = (Taint.Tagset.union sp) ((Taint.Tagset.of_list sp) l1)
                ((Taint.Tagset.of_list sp) l2) in
      let model = Ref_set.union (Ref_set.of_list l1) (Ref_set.of_list l2) in
      same_as_model t model)

let prop_interned_add_mem_model =
  Test.make ~name:"interned add/mem match reference set" ~count:300
    (pair source (list_of_size (Gen.int_bound 8) source))
    (fun (s, l) ->
      let t = (Taint.Tagset.add sp) s ((Taint.Tagset.of_list sp) l) in
      let model = Ref_set.add s (Ref_set.of_list l) in
      same_as_model t model
      && Taint.Tagset.mem s t
      && List.for_all
           (fun x -> Taint.Tagset.mem x t = Ref_set.mem x model)
           (s :: l))

let prop_interned_equal_is_extensional =
  Test.make ~name:"interned equal/compare agree with element equality"
    ~count:300
    (pair (list_of_size (Gen.int_bound 8) source)
       (list_of_size (Gen.int_bound 8) source))
    (fun (l1, l2) ->
      let a = (Taint.Tagset.of_list sp) l1 and b = (Taint.Tagset.of_list sp) l2 in
      let extensional = Ref_set.equal (Ref_set.of_list l1) (Ref_set.of_list l2) in
      Taint.Tagset.equal a b = extensional
      && (Taint.Tagset.compare a b = 0) = extensional
      && (Taint.Tagset.id a = Taint.Tagset.id b) = extensional)

let prop_interned_filter_model =
  Test.make ~name:"interned filter matches reference set filter" ~count:300
    (list_of_size (Gen.int_bound 8) source)
    (fun l ->
      let keep s = Taint.Source.resource_name s <> None in
      same_as_model
        ((Taint.Tagset.filter sp) keep ((Taint.Tagset.of_list sp) l))
        (Ref_set.filter keep (Ref_set.of_list l)))

(* ------------------------------------------------------------------ *)
(* Origin classification dominance                                     *)

let no_trust (_ : Taint.Source.t) = false

let prop_origin_socket_dominates =
  Test.make ~name:"a socket source always dominates classification"
    ~count:200 tagset (fun t ->
      match Taint.Tagset.sockets t with
      | [] -> QCheck.assume_fail ()
      | _ ->
        (match Taint.Origin.classify ~trusted:no_trust t with
         | Taint.Origin.From_socket _ -> true
         | _ -> false))

let prop_origin_empty_unknown =
  Test.make ~name:"trusting everything yields Unknown" ~count:100 tagset
    (fun t ->
      Taint.Origin.classify ~trusted:(fun _ -> true) t
      = Taint.Origin.Unknown)

let prop_origin_classify_all_consistent =
  Test.make ~name:"classify is the head of classify_all" ~count:200 tagset
    (fun t ->
      match Taint.Origin.classify_all ~trusted:no_trust t with
      | [] -> Taint.Origin.classify ~trusted:no_trust t = Taint.Origin.Unknown
      | k :: _ ->
        Taint.Origin.equal_kind k
          (Taint.Origin.classify ~trusted:no_trust t))

(* ------------------------------------------------------------------ *)
(* Expert values and s-expressions                                     *)

let prop_value_compare_refl =
  Test.make ~name:"value compare reflexive" ~count:200 value (fun v ->
      Expert.Value.compare v v = 0 && Expert.Value.equal v v)

let prop_value_compare_antisym =
  Test.make ~name:"value compare antisymmetric" ~count:200
    (pair value value) (fun (a, b) ->
      let c = Expert.Value.compare a b and c' = Expert.Value.compare b a in
      (c = 0) = (c' = 0) && (c > 0) = (c' < 0))

let rec sexp_of_value (v : Expert.Value.t) : Expert.Sexp.t =
  match v with
  | Sym s -> Expert.Sexp.Atom s
  | Str s -> Expert.Sexp.Quoted s
  | Int n -> Expert.Sexp.Atom (string_of_int n)
  | Lst l -> Expert.Sexp.List (List.map sexp_of_value l)

let prop_sexp_roundtrip =
  Test.make ~name:"sexp print/parse round trip" ~count:200 value (fun v ->
      let s = sexp_of_value v in
      let printed = Fmt.to_to_string Expert.Sexp.pp s in
      Expert.Sexp.parse printed = s)

(* ------------------------------------------------------------------ *)
(* Machine memory                                                      *)

let prop_word_roundtrip =
  Test.make ~name:"machine word store/load round trip" ~count:200
    (pair (int_bound 0xFFF0) (int_bound 0xFFFFFFF)) (fun (addr, v) ->
      let m = Vm.Machine.create () in
      Vm.Machine.write_word m addr v;
      Vm.Machine.read_word m addr = v land 0xFFFFFFFF)

let prop_string_roundtrip =
  Test.make ~name:"machine string write/read round trip" ~count:200
    (pair (int_bound 0xF000) string_printable) (fun (addr, s) ->
      let m = Vm.Machine.create () in
      Vm.Machine.write_string m addr s;
      Vm.Machine.read_bytes m addr (String.length s) = s)

(* ------------------------------------------------------------------ *)
(* Random straight-line programs vs a reference interpreter            *)

type rop = Radd | Rsub | Rxor | Rand | Ror | Rmul

let rop_gen = Gen.oneofl [ Radd; Rsub; Rxor; Rand; Ror; Rmul ]

let reference_step (a, b) (op, operand_is_b, k) =
  let rhs = if operand_is_b then b else k in
  let a' =
    match op with
    | Radd -> a + rhs
    | Rsub -> a - rhs
    | Rxor -> a lxor rhs
    | Rand -> a land rhs
    | Ror -> a lor rhs
    | Rmul -> a * rhs
  in
  (a' land 0xFFFFFFFF), b

let insn_of_step (op, operand_is_b, k) : Isa.Insn.t =
  let src : Isa.Operand.t = if operand_is_b then Reg EBX else Imm k in
  match op with
  | Radd -> Add (Reg EAX, src)
  | Rsub -> Sub (Reg EAX, src)
  | Rxor -> Xor (Reg EAX, src)
  | Rand -> And (Reg EAX, src)
  | Ror -> Or (Reg EAX, src)
  | Rmul -> Mul (Reg EAX, src)

let program_gen =
  Gen.(
    triple (int_bound 0xFFFF) (int_bound 0xFFFF)
      (list_size (int_bound 20)
         (triple rop_gen bool (int_bound 0xFFFF))))

let prop_machine_matches_reference =
  Test.make ~name:"machine ALU agrees with reference interpreter"
    ~count:300
    (make
       ~print:(fun (a, b, steps) ->
         Printf.sprintf "eax=%d ebx=%d steps=%d" a b (List.length steps))
       program_gen)
    (fun (a0, b0, steps) ->
      let expected, _ = List.fold_left reference_step (a0, b0) steps in
      let insns = List.map insn_of_step steps @ [ Isa.Insn.Hlt ] in
      let img =
        Binary.Image.make ~path:"/p" ~kind:Binary.Image.Executable
          ~base:0x1000 ~text:(Array.of_list insns) ~sections:[]
          ~exports:[] ~relocs:[] ~needed:[] ~entry:0x1000
      in
      let m = Vm.Machine.create () in
      Vm.Machine.map_image m img;
      Vm.Machine.set_eip m 0x1000;
      Vm.Machine.set_reg m EAX a0;
      Vm.Machine.set_reg m EBX b0;
      let rec go n =
        if n > 100 then failwith "runaway"
        else
          match Vm.Machine.step m with
          | Vm.Machine.Stopped _ -> ()
          | _ -> go (n + 1)
      in
      go 0;
      Vm.Machine.get_reg m EAX = expected)

(* ------------------------------------------------------------------ *)
(* Filesystem                                                          *)

let prop_fs_roundtrip =
  Test.make ~name:"fs write_at/read_at round trip" ~count:200
    (pair (int_bound 200) string_printable) (fun (pos, s) ->
      let fs = Osim.Fs.create () in
      let f = Osim.Fs.ensure fs "/x" in
      Osim.Fs.write_at f ~pos s;
      Osim.Fs.read_at f ~pos ~len:(String.length s) = s)

(* ------------------------------------------------------------------ *)
(* Shadow memory behaves like a per-byte map                           *)

let prop_shadow_range_union =
  Test.make ~name:"shadow range is the union of its bytes" ~count:100
    (list_of_size (Gen.int_bound 6) (pair (int_bound 16) tagset))
    (fun writes ->
      let s = Harrier.Shadow.create ~space:sp () in
      List.iter (fun (a, t) -> Harrier.Shadow.set_byte s a t) writes;
      let expected =
        List.fold_left
          (fun acc a -> (Taint.Tagset.union sp) acc (Harrier.Shadow.byte s a))
          Taint.Tagset.empty
          (List.init 17 Fun.id)
      in
      Taint.Tagset.equal expected (Harrier.Shadow.range s 0 17))

(* ------------------------------------------------------------------ *)
(* Paged shadow memory agrees with a per-byte map model; operations
   straddle the 4 KiB page boundary on purpose                         *)

type shadow_op =
  | Sset_byte of int * Taint.Tagset.t
  | Sset_range of int * int * Taint.Tagset.t

(* Addresses in [4064, 4064+96): ops cross the page_size = 4096 edge. *)
let shadow_base = 4064
let shadow_span = 96

let shadow_op_gen =
  let open Gen in
  let addr = map (fun o -> shadow_base + o) (int_bound (shadow_span - 1)) in
  oneof
    [ map2 (fun a t -> Sset_byte (a, t)) addr tagset_gen;
      map3 (fun a len t -> Sset_range (a, len, t)) addr (int_bound 40)
        tagset_gen ]

let shadow_ops =
  make
    ~print:(fun ops -> Printf.sprintf "%d shadow ops" (List.length ops))
    (Gen.list_size (Gen.int_bound 12) shadow_op_gen)

let model_apply model = function
  | Sset_byte (a, t) ->
    if Taint.Tagset.is_empty t then Hashtbl.remove model a
    else Hashtbl.replace model a t
  | Sset_range (a, len, t) ->
    for i = a to a + len - 1 do
      if Taint.Tagset.is_empty t then Hashtbl.remove model i
      else Hashtbl.replace model i t
    done

let model_byte model a =
  Option.value (Hashtbl.find_opt model a) ~default:Taint.Tagset.empty

let model_range model a len =
  let acc = ref Taint.Tagset.empty in
  for i = a to a + len - 1 do
    acc := (Taint.Tagset.union sp) !acc (model_byte model i)
  done;
  !acc

let prop_shadow_matches_byte_map =
  Test.make ~name:"paged shadow agrees with a byte-map model" ~count:300
    shadow_ops
    (fun ops ->
      let s = Harrier.Shadow.create ~space:sp () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          (match op with
           | Sset_byte (a, t) -> Harrier.Shadow.set_byte s a t
           | Sset_range (a, len, t) -> Harrier.Shadow.set_range s a len t);
          model_apply model op)
        ops;
      let bytes_agree =
        List.for_all
          (fun i ->
            let a = shadow_base + i in
            Taint.Tagset.equal (Harrier.Shadow.byte s a) (model_byte model a))
          (List.init shadow_span Fun.id)
      in
      bytes_agree
      && Taint.Tagset.equal
           (Harrier.Shadow.range s shadow_base shadow_span)
           (model_range model shadow_base shadow_span)
      && Harrier.Shadow.tagged_bytes s = Hashtbl.length model)

let prop_shadow_clone_independent =
  Test.make ~name:"shadow clone is a deep copy" ~count:100
    (pair shadow_ops shadow_ops)
    (fun (ops, after) ->
      let s = Harrier.Shadow.create ~space:sp () in
      List.iter
        (function
          | Sset_byte (a, t) -> Harrier.Shadow.set_byte s a t
          | Sset_range (a, len, t) -> Harrier.Shadow.set_range s a len t)
        ops;
      let snapshot =
        List.init shadow_span (fun i -> Harrier.Shadow.byte s (shadow_base + i))
      in
      let c = Harrier.Shadow.clone s in
      List.iter
        (function
          | Sset_byte (a, t) -> Harrier.Shadow.set_byte c a t
          | Sset_range (a, len, t) -> Harrier.Shadow.set_range c a len t)
        after;
      List.for_all2
        (fun expected i ->
          Taint.Tagset.equal expected (Harrier.Shadow.byte s (shadow_base + i)))
        snapshot
        (List.init shadow_span Fun.id))

(* ------------------------------------------------------------------ *)
(* Engine refraction                                                   *)

let prop_engine_refraction =
  Test.make ~name:"a second run never re-fires" ~count:50
    (int_bound 5) (fun n ->
      let e = Expert.Engine.create () in
      Expert.Engine.deftemplate e
        (Expert.Template.make "t" [ Expert.Template.slot "v" ]);
      Expert.Engine.defrule e
        (Expert.Engine.rule ~name:"r" [ Expert.Pattern.make "t" [] ]
           (fun _ _ _ -> ()));
      for i = 1 to n do
        ignore (Expert.Engine.assert_fact e "t" [ "v", Expert.Value.Int i ])
      done;
      let first = Expert.Engine.run e in
      let second = Expert.Engine.run e in
      first = n && second = 0)

(* ------------------------------------------------------------------ *)
(* Secure binaries: a program with no data sections is trivially
   secure                                                              *)

let prop_secure_no_data =
  Test.make ~name:"no data sections implies Secure Binary" ~count:50
    (list_of_size (Gen.int_bound 10)
       (make ~print:(fun _ -> "<insn>")
          (Gen.oneofl
             [ Isa.Insn.Nop; Isa.Insn.Cpuid;
               Isa.Insn.Mov (W, Reg EAX, Imm 5); Isa.Insn.Int 0x80 ])))
    (fun insns ->
      let img =
        Binary.Image.make ~path:"/p" ~kind:Binary.Image.Executable
          ~base:0 ~text:(Array.of_list insns) ~sections:[] ~exports:[]
          ~relocs:[] ~needed:[] ~entry:0
      in
      Hth.Secure_binary.is_secure img)

(* ------------------------------------------------------------------ *)
(* Taint propagation vs a reference shadow interpreter                  *)

(* ops over 4 registers: mov r<-r, mov r<-imm, alu r<-r *)
type top = Tmov_rr | Tmov_ri | Talu

let treg_gen = Gen.oneofl [ Isa.Reg.EAX; Isa.Reg.EBX; Isa.Reg.ECX;
                            Isa.Reg.EDX ]

let tstep_gen =
  Gen.(triple (oneofl [ Tmov_rr; Tmov_ri; Talu ]) treg_gen treg_gen)

let imm_tag = (Taint.Tagset.singleton sp) (Taint.Source.Binary "/img")

let reference_taint tags (op, dst, src) =
  let get r = List.assoc (Isa.Reg.index r) tags in
  let set r v =
    (Isa.Reg.index r, v)
    :: List.remove_assoc (Isa.Reg.index r) tags
  in
  match op with
  | Tmov_rr -> set dst (get src)
  | Tmov_ri -> set dst imm_tag
  | Talu -> set dst ((Taint.Tagset.union sp) (get dst) (get src))

let insn_of_tstep (op, dst, src) : Isa.Insn.t =
  match op with
  | Tmov_rr -> Mov (W, Reg dst, Reg src)
  | Tmov_ri -> Mov (W, Reg dst, Imm 7)
  | Talu -> Add (Reg dst, Reg src)

let prop_dataflow_matches_reference =
  Test.make ~name:"dataflow agrees with reference taint interpreter"
    ~count:200
    (make
       ~print:(fun (init, steps) ->
         Printf.sprintf "init=%d steps=%d" (List.length init)
           (List.length steps))
       Gen.(pair (list_size (return 4) tagset_gen)
              (list_size (int_bound 15) tstep_gen)))
    (fun (init, steps) ->
      let init =
        (* pad/trim to exactly 4 register tags *)
        let rec take n = function
          | _ when n = 0 -> []
          | [] -> Taint.Tagset.empty :: take (n - 1) []
          | x :: rest -> x :: take (n - 1) rest
        in
        take 4 init
      in
      let m = Vm.Machine.create () in
      let shadow = Harrier.Shadow.create ~space:sp () in
      List.iteri
        (fun i t -> Harrier.Shadow.set_reg shadow (Isa.Reg.of_index i) t)
        init;
      let reference =
        List.fold_left reference_taint
          (List.mapi (fun i t -> i, t) init)
          steps
      in
      List.iter
        (fun step ->
          Harrier.Dataflow.step shadow m ~imm_tag (insn_of_tstep step))
        steps;
      List.for_all
        (fun (i, expected) ->
          Taint.Tagset.equal expected
            (Harrier.Shadow.reg shadow (Isa.Reg.of_index i)))
        reference)

(* ------------------------------------------------------------------ *)
(* Observability counters vs ground truth: run a random straight-line
   program (ALU steps, then 0-3 writes to stdout, then Hlt) under a
   full session and check the counters the run collected against
   quantities we can compute exactly.                                   *)

let write_block : Isa.Insn.t list =
  [ Mov (W, Reg EAX, Imm 4) (* SYS_write *);
    Mov (W, Reg EBX, Imm 1) (* stdout *);
    Mov (W, Reg ECX, Imm 0x4000);
    Mov (W, Reg EDX, Imm 8);
    Int 0x80 ]

let prop_obs_counters_ground_truth =
  Test.make ~name:"obs counters agree with ground truth" ~count:30
    (make
       ~print:(fun (steps, writes) ->
         Printf.sprintf "alu=%d writes=%d" (List.length steps) writes)
       Gen.(
         pair
           (list_size (int_bound 15)
              (triple rop_gen bool (int_bound 0xFFFF)))
           (int_bound 3)))
    (fun (steps, writes) ->
      let insns =
        List.map insn_of_step steps
        @ List.concat (List.init writes (fun _ -> write_block))
        @ [ Isa.Insn.Hlt ]
      in
      let img =
        Binary.Image.make ~path:"/p" ~kind:Binary.Image.Executable
          ~base:0x1000 ~text:(Array.of_list insns) ~sections:[]
          ~exports:[] ~relocs:[] ~needed:[] ~entry:0x1000
      in
      let buf = Buffer.create 1024 in
      Obs.Trace.to_buffer buf;
      let r =
        Fun.protect
          ~finally:Obs.Trace.disable
          (fun () ->
            Hth.Session.run
              (Hth.Session.setup ~programs:[ img ] ~main:"/p" ()))
      in
      let stat name = Option.value (List.assoc_opt name r.stats) ~default:0 in
      let flow_lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l ->
               Astring.String.is_infix ~affix:{|"ev":"flow"|} l)
        |> List.length
      in
      let per_kind_sum =
        List.fold_left
          (fun acc kind -> acc + stat ("harrier.events." ^ kind))
          0
          [ "exec"; "clone"; "access"; "alloc"; "transfer" ]
      in
      (* one instruction per kernel tick; no blocking syscall retries *)
      stat "vm.instructions" = List.length steps + (5 * writes) + 1
      && stat "vm.instructions" = r.os_report.rep_ticks
      && stat "harrier.events" = r.event_count
      && per_kind_sum = r.event_count
      && flow_lines = r.event_count
      && stat "secpert.warnings" = List.length r.warnings)

(* ------------------------------------------------------------------ *)
(* Tier equivalence: compiled blocks with fused taint summaries vs
   pure interpretation.  A random straight-line body runs in a counted
   loop hot enough to promote at threshold 1, with tainted stdin read
   into the data region before the loop and written out after it.  The
   generator deliberately includes blocks the tier must reject or
   window (pop-to-memory, bodies longer than the compile window), so
   the deopt paths are exercised too.  The whole observable surface —
   trace bytes, events, counters, verdict, tick count — must be
   identical with tiering on and off.                                   *)

let tier_reg =
  Gen.oneofl [ Isa.Reg.EAX; Isa.Reg.EBX; Isa.Reg.ECX; Isa.Reg.EDX ]

(* word-aligned slots inside the 16-byte tainted read buffer plus a
   little untainted tail *)
let tier_slot = Gen.map (fun k -> 0x4000 + (4 * k)) (Gen.int_bound 7)

let tier_body_gen : Isa.Insn.t Gen.t =
  let open Gen in
  let reg = map (fun r -> Isa.Operand.Reg r) tier_reg in
  let imm = map (fun k -> Isa.Operand.Imm k) (int_bound 0xFFFF) in
  let mem = map (fun d -> Isa.Operand.mem d) tier_slot in
  let alu =
    map3
      (fun op d s : Isa.Insn.t ->
        match op with
        | Radd -> Add (d, s)
        | Rsub -> Sub (d, s)
        | Rxor -> Xor (d, s)
        | Rand -> And (d, s)
        | Ror -> Or (d, s)
        | Rmul -> Mul (d, s))
      rop_gen reg (oneof [ reg; imm ])
  in
  frequency
    [ 4, alu;
      2, map2 (fun d s -> Isa.Insn.Mov (W, d, s)) reg (oneof [ reg; imm ]);
      2, map2 (fun r m -> Isa.Insn.Mov (W, r, m)) reg mem;
      2, map2 (fun m r -> Isa.Insn.Mov (W, m, r)) mem reg;
      1, map2 (fun r m -> Isa.Insn.Mov (B, r, m)) reg mem;
      1, map2 (fun m r -> Isa.Insn.Mov (B, m, r)) mem reg;
      1,
      map3
        (fun r b d ->
          Isa.Insn.Lea
            (r, { Isa.Operand.base = Some b; index = None; scale = 1;
                  disp = d }))
        tier_reg tier_reg (int_bound 64);
      1,
      map2
        (fun r k -> Isa.Insn.Cmp (W, Isa.Operand.Reg r, Isa.Operand.Imm k))
        tier_reg (int_bound 255);
      1,
      map2
        (fun a b -> Isa.Insn.Test (Isa.Operand.Reg a, Isa.Operand.Reg b))
        tier_reg tier_reg;
      1, map (fun r -> Isa.Insn.Inc (Isa.Operand.Reg r)) tier_reg;
      1, map (fun r -> Isa.Insn.Dec (Isa.Operand.Reg r)) tier_reg;
      1, map (fun r -> Isa.Insn.Push (Isa.Operand.Reg r)) tier_reg;
      1, map (fun r -> Isa.Insn.Pop (Isa.Operand.Reg r)) tier_reg;
      1, map (fun m -> Isa.Insn.Pop m) mem;
      1, return Isa.Insn.Cpuid;
      1, return Isa.Insn.Nop ]

(* read(stdin, 0x4000, 16); loop iters times over the body; write the
   buffer to stdout; halt.  One address per instruction, so the loop
   head is base + 6. *)
let tier_program iters body : Isa.Insn.t list =
  let loop_head = 0x1000 + 6 in
  [ Isa.Insn.Mov (W, Reg EAX, Imm 3) (* SYS_read *);
    Mov (W, Reg EBX, Imm 0);
    Mov (W, Reg ECX, Imm 0x4000);
    Mov (W, Reg EDX, Imm 16);
    Int 0x80;
    Mov (W, Reg ESI, Imm iters) ]
  @ body
  @ [ Isa.Insn.Dec (Reg ESI);
      Jcc (NZ, Imm loop_head);
      Mov (W, Reg EAX, Imm 4) (* SYS_write *);
      Mov (W, Reg EBX, Imm 1);
      Mov (W, Reg ECX, Imm 0x4000);
      Mov (W, Reg EDX, Imm 16);
      Int 0x80;
      Hlt ]

let tier_session ~tier insns =
  let img =
    Binary.Image.make ~path:"/p" ~kind:Binary.Image.Executable ~base:0x1000
      ~text:(Array.of_list insns) ~sections:[] ~exports:[] ~relocs:[]
      ~needed:[] ~entry:0x1000
  in
  let monitor_config =
    if tier then
      { Harrier.Monitor.default_config with tier = true; tier_threshold = 1 }
    else { Harrier.Monitor.default_config with tier = false }
  in
  let buf = Buffer.create 4096 in
  Obs.Trace.to_buffer buf;
  let outcome =
    Fun.protect
      ~finally:Obs.Trace.disable
      (fun () ->
        Hth.Session.run_outcome ~monitor_config
          (Hth.Session.setup ~programs:[ img ]
             ~user_input:[ "ABCDEFGHIJKLMNOP" ] ~main:"/p" ()))
  in
  Buffer.contents buf, outcome

let prop_tier_equivalence =
  Test.make
    ~name:"tiered execution is observationally identical to interpretation"
    ~count:40
    (make
       ~print:(fun (iters, body) ->
         Printf.sprintf "iters=%d body=[%s]" iters
           (String.concat "; " (List.map Isa.Insn.to_string body)))
       Gen.(pair (int_range 1 8) (list_size (int_bound 24) tier_body_gen)))
    (fun (iters, body) ->
      let insns = tier_program iters body in
      let trace_on, on = tier_session ~tier:true insns in
      let trace_off, off = tier_session ~tier:false insns in
      trace_on = trace_off
      &&
      match on, off with
      | Ok a, Ok b ->
        (* with threshold 1 the loop head is promoted on first entry,
           so the tiered run really did compile or reject something *)
        a.Hth.Session.tier.tc_compiled + a.Hth.Session.tier.tc_deopt > 0
        && b.Hth.Session.tier.tc_compiled = 0
        && a.stats = b.stats
        && Hth.Report.equal_verdict (Hth.Report.verdict a)
             (Hth.Report.verdict b)
        && a.event_count = b.event_count
        && a.os_report.rep_ticks = b.os_report.rep_ticks
        && List.length a.events = List.length b.events
        && List.for_all2
             (fun x y ->
               Fmt.to_to_string Harrier.Events.pp x
               = Fmt.to_to_string Harrier.Events.pp y)
             a.events b.events
      | Error a, Error b -> Hth.Error.to_string a = Hth.Error.to_string b
      | Ok _, Error _ | Error _, Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace round trip for random events                                   *)

let resource_gen =
  Gen.map2
    (fun kind (name, origin) : Harrier.Events.resource ->
      { r_kind = kind; r_name = name; r_origin = origin })
    (Gen.oneofl
       [ Harrier.Events.R_file; Harrier.Events.R_socket;
         Harrier.Events.R_stdio ])
    (Gen.pair Gen.string_printable tagset_gen)

let meta_gen =
  Gen.map2
    (fun (pid, time, freq, addr) step : Harrier.Events.meta ->
      { pid; time; freq; addr; step })
    Gen.(quad small_nat small_nat small_nat small_nat)
    Gen.small_nat

let event_gen =
  let open Gen in
  oneof
    [ map3
        (fun path argv meta -> Harrier.Events.Exec { path; argv; meta })
        resource_gen
        (list_size (int_bound 3) string_printable)
        meta_gen;
      map3
        (fun total recent meta ->
          Harrier.Events.Clone { total; recent; window = 3000; meta })
        small_nat small_nat meta_gen;
      map3
        (fun call res meta -> Harrier.Events.Access { call; res; meta })
        (oneofl [ "SYS_open"; "SYS_connect"; "SYS_bind" ])
        resource_gen meta_gen;
      map3
        (fun requested total meta ->
          Harrier.Events.Alloc { requested; total; meta })
        small_nat small_nat meta_gen;
      map3
        (fun (data, head, sources, guard) (target, via_server) (len, meta) ->
          Harrier.Events.Transfer
            { call = "SYS_write"; data; head; sources; guard; target;
              via_server; len; meta })
        (quad tagset_gen string
           (list_size (int_bound 3) (pair source_gen tagset_gen))
           (list_size (int_bound 2) (pair source_gen tagset_gen)))
        (pair resource_gen (option resource_gen))
        (pair small_nat meta_gen) ]

let event =
  make
    ~print:(fun e -> Fmt.to_to_string Harrier.Events.pp e)
    event_gen

let prop_trace_roundtrip =
  Test.make ~name:"trace serialize/parse round trip" ~count:300
    (list_of_size (Gen.int_bound 5) event) (fun events ->
      match Hth.Trace.of_string (Hth.Trace.to_string events) with
      | Error _ -> false
      | Ok events' ->
        List.length events = List.length events'
        && List.for_all2
             (fun a b ->
               Fmt.to_to_string Harrier.Events.pp a
               = Fmt.to_to_string Harrier.Events.pp b)
             events events')

let props =
  [ prop_union_commutes; prop_union_assoc; prop_union_idempotent;
    prop_union_monotone; prop_of_list_set_semantics;
    prop_interned_union_model; prop_interned_add_mem_model;
    prop_interned_equal_is_extensional; prop_interned_filter_model;
    prop_shadow_matches_byte_map; prop_shadow_clone_independent;
    prop_origin_socket_dominates; prop_origin_empty_unknown;
    prop_origin_classify_all_consistent; prop_value_compare_refl;
    prop_value_compare_antisym; prop_sexp_roundtrip; prop_word_roundtrip;
    prop_string_roundtrip; prop_machine_matches_reference;
    prop_fs_roundtrip; prop_shadow_range_union; prop_engine_refraction;
    prop_secure_no_data; prop_trace_roundtrip;
    prop_dataflow_matches_reference; prop_obs_counters_ground_truth;
    prop_tier_equivalence ]

(* ------------------------------------------------------------------ *)
(* Reproducible randomness.  QCHECK_SEED=<int> pins the generator seed;
   without it a fresh seed is drawn, and any failing case prints the
   seed so the exact run can be replayed.                               *)

(* Pure so it is unit-testable: the environment value wins when it
   parses as an integer, otherwise fall back to the fresh draw. *)
let resolve_seed ~env ~fresh =
  match env with
  | None -> fresh
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n -> n
     | None -> fresh)

let seed =
  resolve_seed
    ~env:(Sys.getenv_opt "QCHECK_SEED")
    ~fresh:(Random.self_init (); Random.int 1_000_000_000)

let to_alcotest_seeded test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| seed |])
      test
  in
  let run () =
    try run ()
    with e ->
      Printf.eprintf
        "\n[qcheck] reproduce this failure with: QCHECK_SEED=%d dune \
         runtest --force\n\
         %!"
        seed;
      raise e
  in
  (name, speed, run)

let seed_resolution_case =
  Alcotest.test_case "QCHECK_SEED resolution" `Quick (fun () ->
      let check msg want ~env =
        Alcotest.(check int) msg want (resolve_seed ~env ~fresh:7)
      in
      check "env wins" 42 ~env:(Some "42");
      check "whitespace tolerated" 42 ~env:(Some " 42\n");
      check "negative accepted" (-3) ~env:(Some "-3");
      check "garbage falls back to fresh" 7 ~env:(Some "not-a-seed");
      check "absent falls back to fresh" 7 ~env:None)

let suite = seed_resolution_case :: List.map to_alcotest_seeded props
