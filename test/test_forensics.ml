(* Forensic provenance: the offline analysis layer (lib/forensics) and
   the evidence chains the monitor records for it.

   What ISSUE 4 pins down:
   - the JSONL parser inverts exactly what [Obs.Trace] emits;
   - [Chain.explain] on a committed golden reproduces the committed
     rendering byte for byte (no re-execution anywhere);
   - the provenance property: every warning in every recorded trace —
     clean or fault-injected — carries a non-empty evidence chain whose
     fact steps resolve to real flow events of that same trace;
   - [Profile.of_trace] reproduces the live run's [--stats] numbers
     from the embedded counter / hot_block lines;
   - the counter-name surface is stable against the committed list. *)

let seeds = [ 1; 2; 3; 7; 42 ]

let corpus_slice =
  [ "pma"; "grabem"; "superforker"; "text download"; "vixie crontab";
    "stealth dropper" ]

let scenario name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %S missing from corpus" name

(* Run [sc] with the JSONL sink captured; always restore the no-op
   sink.  Returns the trace bytes and the session outcome. *)
let traced_run ?fault (sc : Guest.Scenario.t) =
  let buf = Buffer.create 4096 in
  Obs.Trace.to_buffer buf;
  let outcome =
    Fun.protect ~finally:Obs.Trace.disable (fun () ->
        Hth.Session.run_outcome ?fault sc.sc_setup)
  in
  (Buffer.contents buf, outcome)

let reader_of_string s =
  match Forensics.Reader.of_string s with
  | Ok t -> t
  | Error m -> Alcotest.failf "trace parse error: %s" m

let reader_of_file path =
  match Forensics.Reader.of_file path with
  | Ok t -> t
  | Error m -> Alcotest.failf "%s: %s" path m

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* JSONL parser inverts the emitter                                    *)

let test_jsonl_roundtrip () =
  let fields =
    [ "neg", Obs.Int (-42);
      "zero", Obs.Int 0;
      "yes", Obs.Bool true;
      "no", Obs.Bool false;
      "plain", Obs.Str "hello";
      "tricky", Obs.Str "quote\" back\\ slash/ nl\n tab\t cr\r";
      "control", Obs.Str "a\x01b\x1fc";
      "bytes", Obs.Str "caf\xc3\xa9" ]
  in
  let buf = Buffer.create 256 in
  Obs.Trace.to_buffer buf;
  Fun.protect ~finally:Obs.Trace.disable (fun () ->
      Obs.Trace.emit "roundtrip" fields);
  let line = String.trim (Buffer.contents buf) in
  match Forensics.Jsonl.parse_line line with
  | Error m -> Alcotest.failf "parse_line failed: %s on %s" m line
  | Ok parsed ->
    let expect name v =
      match List.assoc_opt name parsed with
      | Some got ->
        Alcotest.(check bool) (name ^ " value") true (got = v)
      | None -> Alcotest.failf "field %s missing from %s" name line
    in
    expect "step" (Forensics.Jsonl.Int 0);
    expect "ev" (Forensics.Jsonl.Str "roundtrip");
    List.iter
      (fun (name, v) ->
        expect name
          (match v with
           | Obs.Int n -> Forensics.Jsonl.Int n
           | Obs.Str s -> Forensics.Jsonl.Str s
           | Obs.Bool b -> Forensics.Jsonl.Bool b))
      fields;
    Alcotest.(check int) "field count" (2 + List.length fields)
      (List.length parsed)

let test_jsonl_rejects () =
  List.iter
    (fun line ->
      match Forensics.Jsonl.parse_line line with
      | Ok _ -> Alcotest.failf "parser accepted %S" line
      | Error _ -> ())
    [ ""; "{"; "{}x"; "{\"a\":}"; "{\"a\":1,}"; "{\"a\":\"unterminated}";
      "{\"a\":{\"nested\":1}}"; "[1,2]" ]

(* ------------------------------------------------------------------ *)
(* explain on a committed golden: exact rendering, no re-execution     *)

let test_explain_golden_rendering () =
  let trace = reader_of_file "golden/pma.jsonl" in
  let chains = Forensics.Chain.explain trace in
  let rendered = Fmt.str "%a" Forensics.Chain.pp_chains chains in
  let expected = read_file "golden/pma.explain.txt" in
  Alcotest.(check string)
    "explain output matches committed golden (regenerate with \
     scripts/update_golden.sh)"
    expected rendered

let test_explain_golden_structure () =
  let trace = reader_of_file "golden/pma.jsonl" in
  let chains = Forensics.Chain.explain trace in
  Alcotest.(check int) "pma has four warning chains" 4
    (List.length chains);
  List.iter
    (fun (c : Forensics.Chain.t) ->
      Alcotest.(check bool) "chain has matched facts" true
        (c.facts <> []);
      Alcotest.(check bool) "chain has a firing rule activation" true
        (c.rule <> None);
      Alcotest.(check bool) "chain has taint origins" true
        (c.origins <> []);
      List.iter
        (fun ((fr : Forensics.Chain.fact_ref), entry) ->
          match entry with
          | None ->
            Alcotest.failf "fact %s#%d@%d does not resolve"
              fr.fr_template fr.fr_id fr.fr_step
          | Some (e : Forensics.Reader.entry) ->
            Alcotest.(check int) "resolved step" fr.fr_step e.step;
            Alcotest.(check string) "facts resolve to flow events"
              "flow" e.ev)
        c.facts)
    chains

(* ------------------------------------------------------------------ *)
(* The provenance property, across the corpus and under faults        *)

let check_provenance name trace_bytes =
  let trace = reader_of_string trace_bytes in
  let warnings =
    List.filter
      (fun (e : Forensics.Reader.entry) -> e.ev = "warning")
      (Forensics.Reader.entries trace)
  in
  let chains = Forensics.Chain.explain trace in
  Alcotest.(check int)
    (name ^ ": one chain per warning line")
    (List.length warnings) (List.length chains);
  List.iter
    (fun (c : Forensics.Chain.t) ->
      let where =
        Fmt.str "%s warning step=%d" name c.warning.Forensics.Reader.step
      in
      Alcotest.(check bool) (where ^ ": non-empty evidence") true
        (c.facts <> []);
      List.iter
        (fun ((fr : Forensics.Chain.fact_ref), entry) ->
          match entry with
          | None ->
            Alcotest.failf "%s: fact %s#%d@%d has no event at that step"
              where fr.fr_template fr.fr_id fr.fr_step
          | Some (e : Forensics.Reader.entry) ->
            if e.step <> fr.fr_step || e.ev <> "flow" then
              Alcotest.failf
                "%s: fact %s#%d@%d resolved to %s line at step %d" where
                fr.fr_template fr.fr_id fr.fr_step e.ev e.step)
        c.facts)
    chains

let test_provenance_property () =
  List.iter
    (fun name ->
      let sc = scenario name in
      let clean, _ = traced_run sc in
      check_provenance name clean;
      List.iter
        (fun seed ->
          let faulted, _ =
            traced_run ~fault:(Osim.Fault.seeded seed) sc
          in
          check_provenance (Fmt.str "%s seed %d" name seed) faulted)
        seeds)
    corpus_slice

(* ------------------------------------------------------------------ *)
(* profile reproduces the live --stats numbers                         *)

let test_profile_matches_stats () =
  let sc = scenario "pma" in
  let bytes, outcome = traced_run sc in
  let r =
    match outcome with
    | Ok r -> r
    | Error e -> Alcotest.failf "pma failed: %a" Hth.Error.pp e
  in
  let p = Forensics.Profile.of_trace (reader_of_string bytes) in
  (* taint.* counters are per-session (fresh taint space per run), so
     the trace embeds them like every other family — the offline
     profile must reproduce the live stats exactly *)
  Alcotest.(check (list (pair string int)))
    "embedded counters = live stats" r.Hth.Session.stats p.counters;
  let live_syscalls =
    List.filter_map
      (fun (n, v) ->
        let prefix = "osim.syscalls." in
        let pl = String.length prefix in
        if String.length n > pl && String.sub n 0 pl = prefix then
          Some (String.sub n pl (String.length n - pl), v)
        else None)
      r.Hth.Session.stats
  in
  Alcotest.(check (list (pair string int)))
    "syscall mix" live_syscalls (List.sort compare p.syscalls);
  Alcotest.(check (list (triple int int int)))
    "hot blocks" r.Hth.Session.hot_blocks p.hot_blocks

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let test_diff () =
  let bytes = read_file "golden/pma.jsonl" in
  (match Forensics.Tdiff.diff ~expected:bytes ~actual:bytes with
   | None -> ()
   | Some _ -> Alcotest.fail "identical traces reported divergent");
  let lines = String.split_on_char '\n' bytes in
  let corrupted =
    String.concat "\n"
      (List.mapi
         (fun i l ->
           if i = 3 then
             "{\"step\":3,\"ev\":\"syscall\",\"call\":\"SYS_evil\"}"
           else l)
         lines)
  in
  match Forensics.Tdiff.diff ~expected:bytes ~actual:corrupted with
  | None -> Alcotest.fail "corrupted trace reported identical"
  | Some d ->
    Alcotest.(check int) "divergence line" 4 d.line;
    Alcotest.(check (option int)) "divergence step" (Some 3) d.step

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let test_query () =
  let trace = reader_of_file "golden/pma.jsonl" in
  let count f = List.length (Forensics.Query.run trace f) in
  let all = Forensics.Query.any in
  Alcotest.(check int) "all-pass returns every line"
    (Forensics.Reader.length trace)
    (count all);
  Alcotest.(check int) "four warnings" 4
    (count { all with ev = Some "warning" });
  Alcotest.(check int) "no faults in a clean run" 0
    (count { all with ev = Some "fault" });
  Alcotest.(check bool) "resource substring finds the exfil pipe" true
    (count { all with resource = Some "inpipe" } > 0);
  Alcotest.(check int) "step range is inclusive" 3
    (count { all with step_min = Some 4; step_max = Some 6 });
  Alcotest.(check int) "pid filter drops pid-less lines"
    (count { all with pid = Some 1 })
    (count { all with pid = Some 1; step_min = Some 0 })

(* ------------------------------------------------------------------ *)
(* histogram percentiles: deterministic decimating reservoir           *)

let test_histogram_percentiles () =
  let feed name obs =
    let h = Obs.Histogram.make name in
    List.iter (Obs.Histogram.observe h) obs;
    h
  in
  let small = feed "test.hist.small" (List.init 100 float_of_int) in
  Alcotest.(check (float 0.)) "p50 of 0..99" 49.
    (Obs.Histogram.percentile small 50.);
  Alcotest.(check (float 0.)) "p95 of 0..99" 94.
    (Obs.Histogram.percentile small 95.);
  Alcotest.(check (float 0.)) "p99 of 0..99" 98.
    (Obs.Histogram.percentile small 99.);
  Alcotest.(check (float 0.)) "max of 0..99" 99.
    (Obs.Histogram.maximum small);
  (* past the reservoir capacity the decimation must stay a pure
     function of the observation sequence: two identical streams give
     identical percentiles, and nearest-rank stays within one stride
     of the exact answer *)
  let big = List.init 10_000 float_of_int in
  let a = feed "test.hist.big.a" big and b = feed "test.hist.big.b" big in
  List.iter
    (fun p ->
      let pa = Obs.Histogram.percentile a p in
      Alcotest.(check (float 0.))
        (Fmt.str "p%g deterministic across identical streams" p)
        pa
        (Obs.Histogram.percentile b p);
      let exact = p /. 100. *. 10_000. in
      Alcotest.(check bool)
        (Fmt.str "p%g within decimation error (got %g, exact %g)" p pa
           exact)
        true
        (Float.abs (pa -. exact) <= 64.))
    [ 50.; 95.; 99. ];
  Alcotest.(check int) "count tracks every observation" 10_000
    (Obs.Histogram.count a)

(* ------------------------------------------------------------------ *)
(* counter-name stability                                              *)

let test_counter_families () =
  (* Touch every runtime-registered family first: a clean run and a few
     faulted ones (fault injection registers the osim.faults.injected
     family). *)
  let sc = scenario "pma" in
  ignore (Hth.Session.run_outcome sc.sc_setup);
  List.iter
    (fun seed ->
      ignore
        (Hth.Session.run_outcome ~fault:(Osim.Fault.seeded seed)
           sc.sc_setup))
    seeds;
  let actual = Obs.counter_families () in
  let expected =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file "counter_families.expected"))
  in
  Alcotest.(check (list string))
    "counter-name surface matches test/counter_families.expected \
     (renaming a counter breaks trace consumers — update the list only \
     with the rename)"
    expected actual

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl rejects malformed" `Quick test_jsonl_rejects;
    Alcotest.test_case "explain: golden rendering" `Quick
      test_explain_golden_rendering;
    Alcotest.test_case "explain: chains resolve" `Quick
      test_explain_golden_structure;
    Alcotest.test_case "provenance property (corpus x seeds)" `Slow
      test_provenance_property;
    Alcotest.test_case "profile reproduces --stats" `Quick
      test_profile_matches_stats;
    Alcotest.test_case "diff finds first divergence" `Quick test_diff;
    Alcotest.test_case "query filters" `Quick test_query;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "counter families stable" `Quick
      test_counter_families ]
