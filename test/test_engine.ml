(* Engine-reuse determinism.

   The contract from DESIGN.md §14: a session run through a warm,
   long-lived [Hth.Engine.t] must be observationally identical to a
   cold [Hth.Session.run] — byte-identical JSONL trace, identical
   warnings and verdict — no matter how many sessions the engine has
   already run.  One shared engine instance runs EVERY golden scenario
   below, each twice, so the artifact caches (compiled policy, linked
   images, pooled taint spaces and machine memory) are all exercised in
   their warm state. *)

let golden_scenarios =
  [ "ElmExploit"; "nlspath"; "procex"; "grabem"; "vixie crontab"; "pma";
    "superforker"; "ls"; "column" ]

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %S missing from corpus" name

(* Run one session with the JSONL sink captured; restore the no-op
   sink afterwards.  Returns the trace and the session result. *)
let capture run (sc : Guest.Scenario.t) =
  let buf = Buffer.create 4096 in
  Obs.Trace.to_buffer buf;
  let r =
    Fun.protect ~finally:Obs.Trace.disable (fun () -> run sc.sc_setup)
  in
  Buffer.contents buf, r

let warning_strings (r : Hth.Session.result) =
  List.map Secpert.Warning.to_string r.warnings

let check_same_trace msg ~expected ~actual =
  match Hth.Golden.first_divergence ~expected ~actual with
  | None -> ()
  | Some d -> Alcotest.failf "%s@.%s" msg (Hth.Golden.report ~name:msg d)

(* The one engine shared by every scenario case in this suite. *)
let shared = lazy (Hth.Engine.create ())

let scenario_case name =
  Alcotest.test_case name `Quick (fun () ->
      let sc = find name in
      let eng = Lazy.force shared in
      let cold_trace, cold = capture Hth.Session.run sc in
      let warm1_trace, warm1 = capture (Hth.Engine.run eng) sc in
      let warm2_trace, warm2 = capture (Hth.Engine.run eng) sc in
      check_same_trace (name ^ ": warm engine vs cold session")
        ~expected:cold_trace ~actual:warm1_trace;
      check_same_trace (name ^ ": second warm run vs first")
        ~expected:warm1_trace ~actual:warm2_trace;
      Alcotest.(check (list string))
        (name ^ ": warnings") (warning_strings cold) (warning_strings warm1);
      Alcotest.(check (list string))
        (name ^ ": warnings, second run")
        (warning_strings cold) (warning_strings warm2);
      Alcotest.(check bool)
        (name ^ ": verdict") true
        (cold.max_severity = warm1.max_severity
        && cold.max_severity = warm2.max_severity))

(* [keep_events:false] drops the accumulator sink only: the event
   stream no longer materializes, but warnings, verdict and the trace
   are untouched (the trace sink is an independent subscriber). *)
let no_events_case =
  Alcotest.test_case "keep_events:false" `Quick (fun () ->
      let sc = find "pma" in
      let cold_trace, cold = capture Hth.Session.run sc in
      let eng = Hth.Engine.create ~keep_events:false () in
      let trace, r = capture (Hth.Engine.run eng) sc in
      Alcotest.(check int) "no events accumulated" 0 (List.length r.events);
      Alcotest.(check bool) "events were still dispatched" true
        (r.event_count > 0);
      Alcotest.(check (list string)) "warnings" (warning_strings cold)
        (warning_strings r);
      check_same_trace "trace unchanged without accumulator"
        ~expected:cold_trace ~actual:trace)

(* A shared taint space changes only the [taint.*] cache statistics:
   warnings and verdicts stay identical, and the trace omits the
   warm-dependent taint counter lines rather than embedding unstable
   numbers. *)
let shared_space_case =
  Alcotest.test_case "share_taint_space" `Quick (fun () ->
      let eng = Hth.Engine.create ~share_taint_space:true () in
      List.iter
        (fun name ->
          let sc = find name in
          let cold = Hth.Session.run sc.sc_setup in
          let trace, r = capture (Hth.Engine.run eng) sc in
          Alcotest.(check (list string))
            (name ^ ": warnings") (warning_strings cold) (warning_strings r);
          String.split_on_char '\n' trace
          |> List.iter (fun line ->
                 if Astring.String.is_infix ~affix:"\"taint." line then
                   Alcotest.failf
                     "%s: warm-dependent counter leaked into trace: %s" name
                     line))
        golden_scenarios)

let suite =
  List.map scenario_case golden_scenarios
  @ [ no_events_case; shared_space_case ]
