(* Unit tests for the taint domain: sources, tag sets, origin
   classification (Table 2). *)

open Taint

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let src_user = Source.User_input
let src_file = Source.File "/data/a"
let src_sock = Source.Socket "evil:80"
let src_bin = Source.Binary "/bin/x"
let src_libc = Source.Binary "/lib/libc.so"
let src_hw = Source.Hardware

let no_trust (_ : Source.t) = false

(* one shared arena for every tag set this file builds *)
let sp = Space.create ()

let test_source_equal () =
  check "same file equal" true (Source.equal (File "/a") (File "/a"));
  check "different file" false (Source.equal (File "/a") (File "/b"));
  check "kinds differ" false (Source.equal User_input Hardware);
  check "sock vs file" false (Source.equal (Socket "/a") (File "/a"))

let test_source_order () =
  check "compare reflexive" true (Source.compare src_bin src_bin = 0);
  check "antisymmetric" true
    (Source.compare src_user src_hw = -Source.compare src_hw src_user)

let test_source_names () =
  check_str "user type" "USER_INPUT" (Source.type_name src_user);
  check_str "file type" "FILE" (Source.type_name src_file);
  check_str "socket type" "SOCKET" (Source.type_name src_sock);
  check_str "binary type" "BINARY" (Source.type_name src_bin);
  check_str "hardware type" "HARDWARE" (Source.type_name src_hw);
  Alcotest.(check (option string))
    "file name" (Some "/data/a")
    (Source.resource_name src_file);
  Alcotest.(check (option string))
    "user has no name" None
    (Source.resource_name src_user)

let test_source_pp () =
  check_str "pp binary" "BINARY(\"/bin/x\")" (Source.to_string src_bin);
  check_str "pp hardware" "HARDWARE" (Source.to_string src_hw)

let test_tagset_basics () =
  check "empty is empty" true (Tagset.is_empty Tagset.empty);
  check "singleton not empty" false
    (Tagset.is_empty (Tagset.singleton sp src_user));
  check_int "cardinal of dup list" 2
    (Tagset.cardinal (Tagset.of_list sp [ src_user; src_file; src_user ]));
  check "mem present" true (Tagset.mem src_file
                              (Tagset.of_list sp [ src_user; src_file ]));
  check "mem absent" false (Tagset.mem src_hw (Tagset.singleton sp src_user))

let test_tagset_union () =
  let a = Tagset.of_list sp [ src_user; src_file ] in
  let b = Tagset.of_list sp [ src_file; src_bin ] in
  let u = Tagset.union sp a b in
  check_int "union cardinal" 3 (Tagset.cardinal u);
  check "union commutes" true (Tagset.equal u (Tagset.union sp b a));
  check "union idempotent" true (Tagset.equal a (Tagset.union sp a a))

let test_tagset_selectors () =
  let t = Tagset.of_list sp [ src_user; src_file; src_sock; src_bin; src_hw ] in
  Alcotest.(check (list string)) "binaries" [ "/bin/x" ] (Tagset.binaries t);
  Alcotest.(check (list string)) "files" [ "/data/a" ] (Tagset.files t);
  Alcotest.(check (list string)) "sockets" [ "evil:80" ] (Tagset.sockets t);
  check "user flag" true (Tagset.has_user_input t);
  check "hardware flag" true (Tagset.has_hardware t);
  check "no hardware in empty" false (Tagset.has_hardware Tagset.empty)

let test_tagset_filter_fold () =
  let t = Tagset.of_list sp [ src_user; src_file; src_bin ] in
  let only_named =
    Tagset.filter sp (fun s -> Source.resource_name s <> None) t
  in
  check_int "filter keeps named" 2 (Tagset.cardinal only_named);
  check_int "fold counts" 3 (Tagset.fold (fun _ n -> n + 1) t 0);
  check "exists finds binary" true
    (Tagset.exists (function Source.Binary _ -> true | _ -> false) t)

let kind = Alcotest.testable Origin.pp_kind Origin.equal_kind

let test_origin_empty () =
  Alcotest.check kind "empty is unknown" Origin.Unknown
    (Origin.classify ~trusted:no_trust Tagset.empty)

let test_origin_dominance () =
  let all = Tagset.of_list sp [ src_user; src_file; src_sock; src_bin; src_hw ] in
  Alcotest.check kind "socket dominates" (Origin.From_socket "evil:80")
    (Origin.classify ~trusted:no_trust all);
  let no_sock = Tagset.of_list sp [ src_user; src_file; src_bin; src_hw ] in
  Alcotest.check kind "binary next" (Origin.Hardcoded "/bin/x")
    (Origin.classify ~trusted:no_trust no_sock);
  let no_bin = Tagset.of_list sp [ src_user; src_file; src_hw ] in
  Alcotest.check kind "file next" (Origin.From_file "/data/a")
    (Origin.classify ~trusted:no_trust no_bin);
  let hw_user = Tagset.of_list sp [ src_user; src_hw ] in
  Alcotest.check kind "hardware before user" Origin.From_hardware
    (Origin.classify ~trusted:no_trust hw_user);
  Alcotest.check kind "user last" Origin.From_user
    (Origin.classify ~trusted:no_trust (Tagset.singleton sp src_user))

let test_origin_trust_filter () =
  let trusted = function
    | Source.Binary b -> String.equal b "/lib/libc.so"
    | _ -> false
  in
  let t = Tagset.of_list sp [ src_libc; src_user ] in
  Alcotest.check kind "trusted binary filtered" Origin.From_user
    (Origin.classify ~trusted t);
  Alcotest.check kind "only trusted -> unknown" Origin.Unknown
    (Origin.classify ~trusted (Tagset.singleton sp src_libc))

let test_origin_classify_all () =
  let t = Tagset.of_list sp [ src_bin; src_user; src_sock ] in
  check_int "three origins" 3
    (List.length (Origin.classify_all ~trusted:no_trust t));
  (match Origin.classify_all ~trusted:no_trust t with
   | Origin.From_socket _ :: Origin.Hardcoded _ :: Origin.From_user :: [] ->
     ()
   | _ -> Alcotest.fail "classify_all order wrong")

let test_origin_type_names () =
  check_str "user" "USER_INPUT" (Origin.kind_type_name Origin.From_user);
  check_str "socket" "SOCKET"
    (Origin.kind_type_name (Origin.From_socket "x"));
  check_str "binary" "BINARY" (Origin.kind_type_name (Origin.Hardcoded "x"));
  check_str "file" "FILE" (Origin.kind_type_name (Origin.From_file "x"));
  check_str "hardware" "HARDWARE"
    (Origin.kind_type_name Origin.From_hardware);
  check_str "unknown" "UNKNOWN" (Origin.kind_type_name Origin.Unknown)

let test_table2_combinations () =
  check_int "Table 2 has 11 rows" 11 (List.length Origin.combinations);
  (* USER_INPUT, BINARY and HARDWARE carry no resource id *)
  List.iter
    (fun ds ->
      check (ds ^ " has no origin") true
        (List.mem (ds, None) Origin.combinations))
    [ "USER_INPUT"; "BINARY"; "HARDWARE" ];
  (* FILE and SOCKET names may come from all four origins *)
  List.iter
    (fun ds ->
      List.iter
        (fun origin ->
          check
            (ds ^ " named by " ^ origin)
            true
            (List.mem (ds, Some origin) Origin.combinations))
        [ "USER_INPUT"; "FILE"; "SOCKET"; "BINARY" ])
    [ "FILE"; "SOCKET" ]

let suite =
  [ Alcotest.test_case "source equality" `Quick test_source_equal;
    Alcotest.test_case "source ordering" `Quick test_source_order;
    Alcotest.test_case "source names" `Quick test_source_names;
    Alcotest.test_case "source printing" `Quick test_source_pp;
    Alcotest.test_case "tagset basics" `Quick test_tagset_basics;
    Alcotest.test_case "tagset union" `Quick test_tagset_union;
    Alcotest.test_case "tagset selectors" `Quick test_tagset_selectors;
    Alcotest.test_case "tagset filter/fold" `Quick test_tagset_filter_fold;
    Alcotest.test_case "origin of empty" `Quick test_origin_empty;
    Alcotest.test_case "origin dominance" `Quick test_origin_dominance;
    Alcotest.test_case "origin trust filter" `Quick test_origin_trust_filter;
    Alcotest.test_case "origin classify_all" `Quick test_origin_classify_all;
    Alcotest.test_case "origin type names" `Quick test_origin_type_names;
    Alcotest.test_case "table 2 combinations" `Quick
      test_table2_combinations ]
