(* Tests for the Section 10 future-work features: memory-abuse rules,
   content analysis and cross-session profiles. *)

let sp = Taint.Space.create ()
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "missing scenario %s" name

(* --- memory abuse ---------------------------------------------------- *)

let test_memhog_warns () =
  let r = Hth.Session.run (find "memory hog").sc_setup in
  check "alloc rule fired" true
    (List.exists
       (fun w -> w.Secpert.Warning.rule = "check_alloc")
       r.warnings);
  check "escalates to medium" true
    (r.max_severity = Some Secpert.Severity.Medium)

let test_alloc_thresholds () =
  let judge total =
    let s = Secpert.System.create () in
    ignore
      (Secpert.System.handle_event s
         (Harrier.Events.Alloc
            { requested = 0x70000 + total; total;
              meta = { pid = 1; time = 10; freq = 1; addr = 0; step = 0 } }));
    Secpert.System.max_severity s
  in
  check "small alloc silent" true (judge 0x1000 = None);
  check "medium alloc warns Low" true
    (judge 0x5000 = Some Secpert.Severity.Low);
  check "big alloc warns Medium" true
    (judge 0x20000 = Some Secpert.Severity.Medium)

let test_brk_syscall_semantics () =
  (* brk(0) queries; brk(addr) moves; silly addresses are refused *)
  let exe =
    let open Asm in
    let u = create ~path:"/bin/b" ~kind:Binary.Image.Executable
        ~base:0x1000 ()
    in
    label u "_start";
    movl u eax (imm Osim.Abi.sys_brk);
    movl u ebx (imm 0);
    int80 u;
    movl u esi eax;  (* initial break *)
    addl u esi (imm 0x2000);
    movl u eax (imm Osim.Abi.sys_brk);
    movl u ebx esi;
    int80 u;
    movl u ebx eax;  (* exit code = new break (mod 256 anyway) *)
    subl u ebx esi;  (* 0 if brk returned the requested address *)
    movl u eax (imm Osim.Abi.sys_exit);
    int80 u;
    hlt u;
    finalize u
  in
  let fs = Osim.Fs.create () in
  Osim.Fs.install_image fs exe;
  let k = Osim.Kernel.create ~fs ~net:(Osim.Net.create ()) () in
  (match Osim.Kernel.spawn k ~path:"/bin/b" ~argv:[ "/bin/b" ] with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let r = Osim.Kernel.run k ~max_ticks:10_000 in
  match r.rep_final with
  | [ (_, _, Osim.Process.Exited 0) ] -> ()
  | _ -> Alcotest.failf "brk semantics wrong: %a" Osim.Kernel.pp_report r

(* --- content analysis ------------------------------------------------- *)

let test_content_rule_fires () =
  let r = Hth.Session.run (find "stealth dropper").sc_setup in
  check "content rule fired" true
    (List.exists
       (fun w -> w.Secpert.Warning.rule = "check_content")
       r.warnings);
  check "no matrix warning (names are user-given)" true
    (not
       (List.exists
          (fun w -> w.Secpert.Warning.rule = "check_write")
          r.warnings))

let test_content_magics () =
  let judge head =
    let s = Secpert.System.create () in
    ignore
      (Secpert.System.handle_event s
         (Harrier.Events.Transfer
            { call = "SYS_write";
              data = Taint.Tagset.singleton sp (Taint.Source.Socket "h:1");
              head;
              sources =
                [ Taint.Source.Socket "h:1", Taint.Tagset.empty ];
              guard = [];
              target =
                { r_kind = Harrier.Events.R_file; r_name = "/f";
                  r_origin = Taint.Tagset.empty };
              via_server = None; len = 10;
              meta = { pid = 1; time = 10; freq = 1; addr = 0; step = 0 } }));
    Secpert.System.max_severity s
  in
  check "MZ magic" true (judge "MZ\x90\x00" = Some Secpert.Severity.High);
  check "ELF magic" true (judge "\x7fELF" = Some Secpert.Severity.High);
  check "shebang" true (judge "#!/bin/sh" = Some Secpert.Severity.High);
  check "plain text silent" true (judge "hello world" = None);
  check "short head silent" true (judge "M" = None)

(* --- environment variables on the initial stack ----------------------- *)

let test_env_exfiltration () =
  let r = Hth.Session.run (find "env exfiltration").sc_setup in
  check "env data is USER_INPUT exfiltrated to hard-coded socket" true
    (r.max_severity = Some Secpert.Severity.Low);
  (* the transferred data must carry the USER_INPUT tag *)
  check "user tag on the wire" true
    (List.exists
       (function
         | Harrier.Events.Transfer { data; target; _ } ->
           target.r_kind = Harrier.Events.R_socket
           && Taint.Tagset.has_user_input data
         | _ -> false)
       r.events)

(* --- CIH-style rare-code reinforcement -------------------------------- *)

let test_cih_rare_note () =
  let r = Hth.Session.run (find "CIH date trigger").sc_setup in
  check "high severity" true (r.max_severity = Some Secpert.Severity.High);
  check "rarely-executed note attached" true
    (List.exists
       (fun (w : Secpert.Warning.t) ->
         w.severity = Secpert.Severity.High && w.rare)
       r.warnings)

(* --- cross-session profiles ------------------------------------------ *)

let test_profile_reduces_false_positives () =
  let sc = find "g++" in
  let profile = Hth.Profile.create () in
  (* first session: warnings are novel *)
  let r1 = Hth.Session.run sc.sc_setup in
  check "first run warns" true (r1.warnings <> []);
  check_int "all novel" (List.length r1.warnings)
    (List.length (Hth.Profile.novel profile r1.warnings));
  (* the user accepts the behaviour *)
  Hth.Profile.acknowledge profile r1.warnings;
  (* second session: same warnings, now known *)
  let r2 = Hth.Session.run sc.sc_setup in
  check_int "nothing novel" 0
    (List.length (Hth.Profile.novel profile r2.warnings));
  check "effective verdict is benign" true
    (Hth.Profile.effective_verdict profile r2 = Hth.Report.Benign)

let test_profile_still_flags_new_behaviour () =
  let profile = Hth.Profile.create () in
  let r1 = Hth.Session.run (find "g++").sc_setup in
  Hth.Profile.acknowledge profile r1.warnings;
  (* a different program's warnings are NOT covered by g++'s profile *)
  let r2 = Hth.Session.run (find "grabem").sc_setup in
  check "grabem still flagged" true
    (Hth.Profile.effective_verdict profile r2
     = Hth.Report.Suspicious Secpert.Severity.High)

let test_profile_persistence () =
  let profile = Hth.Profile.create () in
  let r = Hth.Session.run (find "g++").sc_setup in
  Hth.Profile.acknowledge profile r.warnings;
  let reloaded = Hth.Profile.of_string (Hth.Profile.to_string profile) in
  check_int "fingerprints survive round trip"
    (Hth.Profile.size profile)
    (Hth.Profile.size reloaded);
  check_int "known after reload" 0
    (List.length (Hth.Profile.novel reloaded r.warnings))

let test_profile_multiline_messages () =
  (* warning messages contain newlines; persistence must survive them *)
  let w =
    Secpert.Warning.make ~severity:Secpert.Severity.Low ~rule:"r" ~pid:1
      ~time:0 "line one\n\tline two"
  in
  let p = Hth.Profile.create () in
  Hth.Profile.acknowledge p [ w ];
  let p' = Hth.Profile.of_string (Hth.Profile.to_string p) in
  check "known across persistence" true (Hth.Profile.known p' w)

let suite =
  [ Alcotest.test_case "memhog warns" `Quick test_memhog_warns;
    Alcotest.test_case "alloc thresholds" `Quick test_alloc_thresholds;
    Alcotest.test_case "brk syscall semantics" `Quick
      test_brk_syscall_semantics;
    Alcotest.test_case "content rule fires" `Quick
      test_content_rule_fires;
    Alcotest.test_case "content magics" `Quick test_content_magics;
    Alcotest.test_case "env exfiltration" `Quick test_env_exfiltration;
    Alcotest.test_case "CIH rare-code note" `Quick test_cih_rare_note;
    Alcotest.test_case "profile reduces false positives" `Quick
      test_profile_reduces_false_positives;
    Alcotest.test_case "profile still flags new behaviour" `Quick
      test_profile_still_flags_new_behaviour;
    Alcotest.test_case "profile persistence" `Quick
      test_profile_persistence;
    Alcotest.test_case "profile multiline messages" `Quick
      test_profile_multiline_messages ]
