(* Fleet determinism and isolation.

   The contract from DESIGN.md §15: a batch run on an N-worker fleet is
   observationally identical to the same batch run sequentially —
   byte-identical per-session traces, identical warnings, verdicts and
   error outcomes, in submission order — no matter how the
   work-stealing interleaved the sessions, and no matter which worker
   ran which session.  One crashing task or failing session must never
   take down its worker, let alone the pool. *)

let golden_scenarios =
  [ "ElmExploit"; "nlspath"; "procex"; "grabem"; "vixie crontab"; "pma";
    "superforker"; "ls"; "column" ]

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %S missing from corpus" name

let check_same_trace msg ~expected ~actual =
  match Hth.Golden.first_divergence ~expected ~actual with
  | None -> ()
  | Some d -> Alcotest.failf "%s@.%s" msg (Hth.Golden.report ~name:msg d)

(* ------------------------------------------------------------------ *)
(* deque unit behavior                                                 *)

let deque_case =
  Alcotest.test_case "deque: owner LIFO, thief FIFO, grow" `Quick (fun () ->
      let d = Fleet.Deque.create ~capacity:2 () in
      for i = 0 to 99 do
        Fleet.Deque.push d i
      done;
      (* growth happened (capacity hint was 2) and nothing was lost *)
      Alcotest.(check int) "size" 100 (Fleet.Deque.size d);
      Alcotest.(check (option int)) "thief takes the oldest" (Some 0)
        (Fleet.Deque.steal d);
      Alcotest.(check (option int)) "owner takes the newest" (Some 99)
        (Fleet.Deque.pop d);
      let rest = ref [] in
      let rec drain () =
        match Fleet.Deque.pop d with
        | Some v ->
          rest := v :: !rest;
          drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check int) "drained" 98 (List.length !rest);
      Alcotest.(check (option int)) "empty pop" None (Fleet.Deque.pop d);
      Alcotest.(check (option int)) "empty steal" None (Fleet.Deque.steal d))

let deque_race_case =
  Alcotest.test_case "deque: concurrent thieves lose nothing" `Quick
    (fun () ->
      let d = Fleet.Deque.create () in
      let n = 10_000 in
      let stolen = Atomic.make 0 and sum = Atomic.make 0 in
      let thief () =
        let rec go () =
          match Fleet.Deque.steal d with
          | Some v ->
            Atomic.incr stolen;
            ignore (Atomic.fetch_and_add sum v);
            go ()
          | None -> if Atomic.get stolen < n then (Domain.cpu_relax (); go ())
        in
        go ()
      in
      let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
      for i = 1 to n do
        Fleet.Deque.push d i
      done;
      List.iter Domain.join thieves;
      (* every pushed task was claimed exactly once *)
      Alcotest.(check int) "claims" n (Atomic.get stolen);
      Alcotest.(check int) "sum" (n * (n + 1) / 2) (Atomic.get sum))

(* ------------------------------------------------------------------ *)
(* pool scheduling and crash isolation                                 *)

let pool_case =
  Alcotest.test_case "pool: completes all tasks, survives crashes" `Quick
    (fun () ->
      let p = Fleet.Pool.create ~jobs:4 () in
      let hits = Atomic.make 0 in
      for i = 0 to 199 do
        Fleet.Pool.submit p (fun _w _e ->
            if i mod 10 = 3 then failwith "injected task crash";
            Atomic.incr hits)
      done;
      Fleet.Pool.drain p;
      (* the pool is still alive after 20 crashing tasks *)
      Fleet.Pool.submit p (fun _w _e -> Atomic.incr hits);
      Fleet.Pool.shutdown p;
      let s = Fleet.Pool.stats p in
      Alcotest.(check int) "non-crashing tasks ran" 181 (Atomic.get hits);
      Alcotest.(check int) "every task executed" 201 s.Fleet.Pool.executed;
      Alcotest.(check int) "crashes counted" 20 s.Fleet.Pool.exceptions;
      Alcotest.(check int) "submissions counted" 201 s.Fleet.Pool.injected;
      Alcotest.(check bool) "submit after shutdown rejected" true
        (try
           Fleet.Pool.submit p (fun _ _ -> ());
           false
         with Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* executor: fleet runs are byte-identical to sequential runs          *)

let engine_of () = Hth.Engine.create ()

let fleet_outcomes ~jobs ?fault names =
  let ex = Fleet.Executor.create ~jobs [ "default", engine_of () ] in
  let outs =
    Fleet.Executor.run_all ex
      (List.map
         (fun n -> Fleet.Executor.job ?fault ~trace:true (find n).sc_setup)
         names)
  in
  Fleet.Executor.shutdown ex;
  outs

let capture_cold (sc : Guest.Scenario.t) =
  let buf = Buffer.create 4096 in
  Obs.Trace.to_buffer buf;
  let r =
    Fun.protect ~finally:Obs.Trace.disable (fun () ->
        Hth.Session.run sc.sc_setup)
  in
  Buffer.contents buf, r

let identity_case =
  Alcotest.test_case "4 workers vs cold sequential sessions" `Quick
    (fun () ->
      let outs = fleet_outcomes ~jobs:4 golden_scenarios in
      List.iteri
        (fun i (o : Fleet.Executor.outcome) ->
          let name = List.nth golden_scenarios i in
          let cold_trace, cold = capture_cold (find name) in
          Alcotest.(check int) "sequence order" i o.o_seq;
          match o.o_result with
          | Error e ->
            Alcotest.failf "%s: fleet error: %s" name (Hth.Error.to_string e)
          | Ok r ->
            check_same_trace (name ^ ": fleet trace vs cold trace")
              ~expected:cold_trace
              ~actual:(Option.value ~default:"" o.o_trace);
            Alcotest.(check (list string))
              (name ^ ": warnings")
              (List.map Secpert.Warning.to_string cold.warnings)
              (List.map Secpert.Warning.to_string r.warnings);
            Alcotest.(check bool) (name ^ ": verdict") true
              (cold.max_severity = r.max_severity))
        outs)

(* corpus x 4 domains x 5 seeds: the faulted fleet must match the
   one-worker fleet byte for byte *)
let seeds_case =
  Alcotest.test_case "4 workers vs 1 worker across fault seeds" `Quick
    (fun () ->
      List.iter
        (fun seed ->
          let fault = Osim.Fault.seeded seed in
          let seq = fleet_outcomes ~jobs:1 ~fault golden_scenarios in
          let par = fleet_outcomes ~jobs:4 ~fault golden_scenarios in
          List.iter2
            (fun (a : Fleet.Executor.outcome) (b : Fleet.Executor.outcome) ->
              let name = List.nth golden_scenarios a.o_seq in
              (match a.o_result, b.o_result with
               | Ok _, Ok _ | Error _, Error _ -> ()
               | _ ->
                 Alcotest.failf "%s seed %d: outcome class diverged" name
                   seed);
              check_same_trace
                (Printf.sprintf "%s seed %d: jobs=4 vs jobs=1" name seed)
                ~expected:(Option.value ~default:"" a.o_trace)
                ~actual:(Option.value ~default:"" b.o_trace))
            seq par)
        [ 1; 2; 3; 4; 5 ])

let unknown_engine_case =
  Alcotest.test_case "unknown engine name is an ordered outcome" `Quick
    (fun () ->
      let ex = Fleet.Executor.create ~jobs:2 [ "default", engine_of () ] in
      let setup = (find "pma").sc_setup in
      let outs =
        Fleet.Executor.run_all ex
          [ Fleet.Executor.job setup;
            Fleet.Executor.job ~engine:"nonesuch" setup;
            Fleet.Executor.job setup ]
      in
      Fleet.Executor.shutdown ex;
      (match outs with
       | [ a; b; c ] ->
         Alcotest.(check bool) "first ok" true (Result.is_ok a.o_result);
         (match b.o_result with
          | Error (Hth.Error.Policy_error msg) ->
            Alcotest.(check bool) "names the engine" true
              (Astring.String.is_infix ~affix:"nonesuch" msg)
          | _ -> Alcotest.fail "expected Policy_error for unknown engine");
         Alcotest.(check bool) "third ok" true (Result.is_ok c.o_result)
       | _ -> Alcotest.fail "expected three outcomes"))

(* Session failures (here: a fault plan breaking the loader) come back
   as the same typed errors the sequential engine reports, at the right
   sequence positions, without disturbing neighbouring sessions. *)
let fault_isolation_case =
  Alcotest.test_case "failing sessions match sequential errors" `Quick
    (fun () ->
      let plan =
        match Osim.Fault.parse "*=eio" with
        | Ok p -> p
        | Error e -> Alcotest.failf "bad plan: %s" e
      in
      let names = [ "pma"; "grabem"; "ls" ] in
      let eng = engine_of () in
      let seq_results =
        List.map
          (fun n -> Hth.Engine.run_outcome eng ~fault:plan (find n).sc_setup)
          names
      in
      let ex = Fleet.Executor.create ~jobs:2 [ "default", engine_of () ] in
      let outs =
        Fleet.Executor.run_all ex
          (List.map
             (fun n -> Fleet.Executor.job ~fault:plan (find n).sc_setup)
             names)
      in
      Fleet.Executor.shutdown ex;
      List.iter2
        (fun seq (o : Fleet.Executor.outcome) ->
          match seq, o.o_result with
          | Ok a, Ok b ->
            Alcotest.(check bool) "same verdict" true
              (a.Hth.Session.max_severity = b.Hth.Session.max_severity)
          | Error a, Error b ->
            Alcotest.(check string) "same error" (Hth.Error.to_string a)
              (Hth.Error.to_string b)
          | _ -> Alcotest.fail "outcome class diverged from sequential")
        seq_results outs)

(* ------------------------------------------------------------------ *)
(* observability: worker shards fold back deterministically            *)

let absorb_case =
  Alcotest.test_case "worker counters absorbed into the main domain"
    `Quick (fun () ->
      let before = Obs.snapshot () in
      let n = List.length golden_scenarios in
      ignore (fleet_outcomes ~jobs:4 golden_scenarios);
      let diff = Obs.diff ~before ~after:(Obs.snapshot ()) in
      let get name =
        match List.assoc_opt name diff with Some v -> v | None -> 0
      in
      Alcotest.(check int) "fleet.tasks" n (get "fleet.tasks");
      Alcotest.(check int) "session outcomes" n (get "session.outcome.ok");
      (* per-session work done on worker domains is visible here *)
      Alcotest.(check bool) "instructions absorbed" true
        (get "vm.instructions" > 0);
      Alcotest.(check bool) "warnings absorbed" true
        (get "secpert.warnings" > 0);
      (* absorbing is deterministic: the same batch adds the same
         totals again *)
      let before2 = Obs.snapshot () in
      ignore (fleet_outcomes ~jobs:4 golden_scenarios);
      let diff2 = Obs.diff ~before:before2 ~after:(Obs.snapshot ()) in
      let stable = [ "vm.instructions"; "secpert.warnings"; "fleet.tasks" ] in
      List.iter
        (fun k ->
          Alcotest.(check int) (k ^ " repeatable")
            (match List.assoc_opt k diff with Some v -> v | None -> 0)
            (match List.assoc_opt k diff2 with Some v -> v | None -> 0))
        stable)

(* ------------------------------------------------------------------ *)
(* serve: ordered line protocol over the fleet                         *)

let resolver name =
  Option.map
    (fun (sc : Guest.Scenario.t) ->
      { Fleet.Serve.t_setup = sc.sc_setup;
        t_expected = Guest.Scenario.expected_label sc.sc_expected;
        t_matches = Guest.Scenario.matches sc.sc_expected })
    (Guest.Corpus.find name)

let serve_once lines =
  let pending = ref lines in
  let out = ref [] in
  let n =
    Fleet.Serve.run ~jobs:2 ~resolver
      ~input:(fun () ->
        match !pending with
        | [] -> None
        | l :: rest ->
          pending := rest;
          Some l)
      ~output:(fun line -> out := line :: !out)
      ()
  in
  n, List.rev !out

let field line k =
  match Forensics.Jsonl.parse_line line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e
  | Ok fields -> List.assoc_opt k fields

let check_str line k expected =
  match field line k with
  | Some (Forensics.Jsonl.Str s) -> Alcotest.(check string) k expected s
  | _ -> Alcotest.failf "missing string field %S in %s" k line

let serve_case =
  Alcotest.test_case "serve: ordered responses, isolated bad lines"
    `Quick (fun () ->
      let script =
        [ {|{"scenario":"pma","id":"first"}|};
          {|{"scenario":"grabem","policy":"clips"}|};
          "definitely not json";
          {|{"scenario":"no-such-scenario"}|};
          {|{"scenario":"ls","seed":3}|} ]
      in
      let n, out = serve_once script in
      Alcotest.(check int) "requests answered" 5 n;
      Alcotest.(check int) "one response per request" 5 (List.length out);
      List.iteri
        (fun i line ->
          match field line "seq" with
          | Some (Forensics.Jsonl.Int s) ->
            Alcotest.(check int) "responses in input order" i s
          | _ -> Alcotest.failf "missing seq in %s" line)
        out;
      (match out with
       | [ a; b; c; d; e ] ->
         check_str a "status" "ok";
         check_str a "id" "first";
         check_str a "verdict"
           (let r = Guest.Scenario.run (find "pma") in
            Hth.Report.verdict_label (Hth.Report.verdict r));
         check_str b "status" "ok";
         check_str b "scenario" "grabem";
         check_str c "status" "bad_request";
         check_str d "status" "bad_request";
         check_str e "status" "ok";
         Alcotest.(check bool) "match flag present" true
           (field e "match" = Some (Forensics.Jsonl.Bool true))
       | _ -> Alcotest.fail "expected five responses");
      (* serving the same script again is byte-identical *)
      let _, out2 = serve_once script in
      Alcotest.(check (list string)) "deterministic service" out out2)

let suite =
  [ deque_case; deque_race_case; pool_case; identity_case; seeds_case;
    unknown_engine_case; fault_isolation_case; absorb_case; serve_case ]
