(* Unit tests for Secpert: severity, warnings, trust, fact encoding and
   the three policy rule families (driven with synthetic events). *)

open Secpert

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let sp = Taint.Space.create ()
let tag_of l = Taint.Tagset.of_list sp l
let user = Taint.Source.User_input
let bin_mal = Taint.Source.Binary "/mal"
let bin_libc = Taint.Source.Binary "/lib/libc.so"
let sock_evil = Taint.Source.Socket "evil:80"
let file_a = Taint.Source.File "/a"

let meta ?(time = 100) ?(freq = 3) () : Harrier.Events.meta =
  { pid = 1; time; freq; addr = 0x1000; step = 0 }

let file_res ?(origin = Taint.Tagset.empty) name : Harrier.Events.resource =
  { r_kind = Harrier.Events.R_file; r_name = name; r_origin = origin }

let sock_res ?(origin = Taint.Tagset.empty) name : Harrier.Events.resource =
  { r_kind = Harrier.Events.R_socket; r_name = name; r_origin = origin }

let exec ?(origin = tag_of [ bin_mal ]) ?time ?freq () =
  Harrier.Events.Exec
    { path = file_res ~origin "/bin/payload"; argv = [];
      meta = meta ?time ?freq () }

(* Run one event through a fresh Secpert; return its warnings. *)
let judge ?trust ?auto_kill e =
  let s = System.create ?trust ?auto_kill () in
  let decision = System.handle_event s e in
  decision, System.warnings s

let severities ws = List.map (fun w -> w.Warning.severity) ws

(* ------------------------------------------------------------------ *)
(* Severity / warnings                                                 *)

let test_severity_order () =
  check "low < medium" true (Severity.compare Low Medium < 0);
  check "medium < high" true (Severity.compare Medium High < 0);
  check "ge" true Severity.(High >= Low);
  check_str "label" "MEDIUM" (Severity.label Medium);
  check "of_label round trip" true
    (Severity.of_label "HIGH" = Some Severity.High);
  check "of_label garbage" true (Severity.of_label "SEVERE" = None)

let test_warning_pp_rare () =
  let w =
    Warning.make ~severity:Severity.Medium ~rule:"r" ~pid:1 ~time:5
      ~rare:true "Found something"
  in
  let s = Warning.to_string w in
  check "mentions severity" true
    (Astring.String.is_infix ~affix:"[MEDIUM]" s);
  check "mentions rarity" true
    (Astring.String.is_infix ~affix:"rarely executed" s)

let test_warning_dedup_max () =
  let w sev msg =
    Warning.make ~severity:sev ~rule:"r" ~pid:1 ~time:0 msg
  in
  let ws = [ w Severity.Low "a"; w Severity.Low "a"; w Severity.High "b" ] in
  check_int "dedup" 2 (List.length (Warning.dedup ws));
  check "max severity" true (Warning.max_severity ws = Some Severity.High);
  check "max of empty" true (Warning.max_severity [] = None)

let test_warning_dedup_multiplicity () =
  let w sev msg =
    Warning.make ~severity:sev ~rule:"r" ~pid:1 ~time:0 msg
  in
  let ws =
    [ w Severity.Low "a"; w Severity.High "b"; w Severity.Low "a";
      w Severity.Low "a" ]
  in
  match Warning.dedup ws with
  | [ a; b ] ->
    check_int "first keeps its multiplicity" 3 a.Warning.mult;
    check_int "singleton stays at one" 1 b.Warning.mult;
    check "multiplicity rendered" true
      (Astring.String.is_infix ~affix:"(x3)" (Warning.to_string a));
    check "no (x1) noise" false
      (Astring.String.is_infix ~affix:"(x1)" (Warning.to_string b))
  | other ->
    Alcotest.failf "expected two distinct warnings, got %d"
      (List.length other)

(* ------------------------------------------------------------------ *)
(* Trust                                                               *)

let test_trust () =
  check "libc trusted" true (Trust.is_trusted Trust.default bin_libc);
  check "other binary untrusted" false
    (Trust.is_trusted Trust.default bin_mal);
  check "nothing trusts nothing" false
    (Trust.is_trusted Trust.nothing bin_libc);
  Alcotest.(check (list string))
    "filter_binary" [ "/mal" ]
    (Trust.untrusted_binaries Trust.default (tag_of [ bin_mal; bin_libc ]));
  check "classify filters trusted" true
    (Trust.classify Trust.default (tag_of [ bin_libc; user ])
     = Taint.Origin.From_user)

(* ------------------------------------------------------------------ *)
(* Fact encoding                                                       *)

let test_fact_encoding_exec () =
  let s = System.create () in
  let fact =
    Facts.assert_event (System.engine s) Trust.default (exec ())
  in
  check_str "template" Facts.t_system_call_access fact.template;
  check "call name" true
    (Expert.Fact.slot fact "system_call_name"
     = Some (Expert.Value.Sym "SYS_execve"));
  check "origin type" true
    (Expert.Fact.slot fact "resource_origin_type"
     = Some (Expert.Value.Sym "BINARY"));
  check "origin name" true
    (Expert.Fact.slot fact "resource_origin_name"
     = Some (Expert.Value.Str "/mal"))

let test_fact_encoding_transfer () =
  let s = System.create () in
  let e =
    Harrier.Events.Transfer
      { call = "SYS_write"; data = tag_of [ file_a ]; head = "";
        sources = [ file_a, tag_of [ bin_mal ] ];
        guard = [];
        target = sock_res ~origin:(tag_of [ bin_mal ]) "evil:80";
        via_server = None; len = 4; meta = meta () }
  in
  let fact = Facts.assert_event (System.engine s) Trust.default e in
  (match Expert.Fact.slot fact "sources" with
   | Some v ->
     (match Facts.decode_sources v with
      | [ si ] ->
        check_str "source type" "FILE" si.s_type;
        check_str "source name" "/a" si.s_name;
        check_str "source origin" "BINARY" si.s_origin_type;
        check_str "source origin name" "/mal" si.s_origin_name
      | _ -> Alcotest.fail "decode_sources wrong")
   | None -> Alcotest.fail "sources slot missing");
  check "server nil" true
    (Expert.Fact.slot fact "server" = Some (Expert.Value.Sym "nil"))

let test_origin_values () =
  check "binary wins" true
    (Facts.origin_values Trust.default (tag_of [ bin_mal; user ])
     = ("BINARY", "/mal"));
  check "trusted filtered" true
    (Facts.origin_values Trust.default (tag_of [ bin_libc ])
     = ("UNKNOWN", ""));
  check "empty unknown" true
    (Facts.origin_values Trust.default Taint.Tagset.empty
     = ("UNKNOWN", ""))

(* ------------------------------------------------------------------ *)
(* Execution-flow policy                                               *)

let test_exec_hardcoded_low () =
  let _, ws = judge (exec ()) in
  Alcotest.(check (list string)) "low" [ "LOW" ]
    (List.map Severity.label (severities ws))

let test_exec_socket_high () =
  let _, ws = judge (exec ~origin:(tag_of [ sock_evil ]) ()) in
  Alcotest.(check (list string)) "high" [ "HIGH" ]
    (List.map Severity.label (severities ws))

let test_exec_rare_medium () =
  let _, ws = judge (exec ~time:5_000 ~freq:1 ()) in
  Alcotest.(check (list string)) "medium" [ "MEDIUM" ]
    (List.map Severity.label (severities ws));
  (* rare but early: still low *)
  let _, ws = judge (exec ~time:50 ~freq:1 ()) in
  Alcotest.(check (list string)) "early stays low" [ "LOW" ]
    (List.map Severity.label (severities ws))

let test_exec_user_silent () =
  let _, ws = judge (exec ~origin:(tag_of [ user ]) ()) in
  check_int "no warning" 0 (List.length ws)

let test_exec_trusted_silent () =
  let _, ws = judge (exec ~origin:(tag_of [ bin_libc ]) ()) in
  check_int "libc origin filtered" 0 (List.length ws);
  (* and the ablation: with no trust, it warns *)
  let _, ws = judge ~trust:Trust.nothing (exec ~origin:(tag_of [ bin_libc ]) ())
  in
  check_int "warns when untrusted" 1 (List.length ws)

(* ------------------------------------------------------------------ *)
(* Resource-abuse policy                                               *)

let clone ~total ~recent =
  Harrier.Events.Clone { total; recent; window = 3000; meta = meta () }

let test_clone_thresholds () =
  let _, ws = judge (clone ~total:8 ~recent:1) in
  check_int "at the count threshold: silent" 0 (List.length ws);
  let _, ws = judge (clone ~total:9 ~recent:1) in
  (match severities ws with
   | [ Severity.Low ] -> ()
   | _ -> Alcotest.fail "count over threshold should warn Low");
  let _, ws = judge (clone ~total:2 ~recent:7) in
  (match severities ws with
   | [ Severity.Medium ] -> ()
   | _ -> Alcotest.fail "high rate should warn Medium");
  let _, ws = judge (clone ~total:9 ~recent:7) in
  match severities ws with
  | [ Severity.Medium ] -> ()
  | _ -> Alcotest.fail "rate takes precedence over count"

(* ------------------------------------------------------------------ *)
(* Information-flow policy                                             *)

let transfer ?(sources = []) ?(target = file_res "/t") ?via_server
    ?(data = Taint.Tagset.empty) ?(head = "") () =
  Harrier.Events.Transfer
    { call = "SYS_write"; data; head; sources; guard = []; target;
      via_server; len = 8; meta = meta () }

let flow_sev ?via_server ~src ~src_origin ~target ~target_origin () =
  let e =
    transfer
      ~sources:[ src, src_origin ]
      ~target:(match target with
        | `File -> file_res ~origin:target_origin "/t"
        | `Sock -> sock_res ~origin:target_origin "peer:1")
      ?via_server ()
  in
  let _, ws = judge e in
  Warning.max_severity ws

let hard = tag_of [ bin_mal ]
let user_t = tag_of [ user ]

let test_flow_binary_to_file () =
  check "hardcoded data to hardcoded file is High" true
    (flow_sev ~src:bin_mal ~src_origin:Taint.Tagset.empty ~target:`File
       ~target_origin:hard ()
     = Some Severity.High);
  check "hardcoded data to user file is silent" true
    (flow_sev ~src:bin_mal ~src_origin:Taint.Tagset.empty ~target:`File
       ~target_origin:user_t ()
     = None);
  check "hardcoded data to remotely-named file is High" true
    (flow_sev ~src:bin_mal ~src_origin:Taint.Tagset.empty ~target:`File
       ~target_origin:(tag_of [ sock_evil ]) ()
     = Some Severity.High)

let test_flow_file_matrix () =
  let case src_o tgt_o expect =
    check
      (Fmt.str "file->socket %s/%s" (Taint.Tagset.to_string src_o)
         (Taint.Tagset.to_string tgt_o))
      true
      (flow_sev ~src:file_a ~src_origin:src_o ~target:`Sock
         ~target_origin:tgt_o ()
       = expect)
  in
  case user_t user_t None;
  case user_t hard (Some Severity.Low);
  case hard user_t (Some Severity.Low);
  case hard hard (Some Severity.High)

let test_flow_hardware () =
  check "hardware to hardcoded file is High" true
    (flow_sev ~src:Taint.Source.Hardware ~src_origin:Taint.Tagset.empty
       ~target:`File ~target_origin:hard ()
     = Some Severity.High);
  check "hardware to user file silent" true
    (flow_sev ~src:Taint.Source.Hardware ~src_origin:Taint.Tagset.empty
       ~target:`File ~target_origin:user_t ()
     = None)

let test_flow_user_exfiltration () =
  check "user input to hardcoded socket is Low" true
    (flow_sev ~src:user ~src_origin:Taint.Tagset.empty ~target:`Sock
       ~target_origin:hard ()
     = Some Severity.Low);
  check "user input to user socket silent" true
    (flow_sev ~src:user ~src_origin:Taint.Tagset.empty ~target:`Sock
       ~target_origin:user_t ()
     = None);
  check "user input to file silent" true
    (flow_sev ~src:user ~src_origin:Taint.Tagset.empty ~target:`File
       ~target_origin:hard ()
     = None)

let test_flow_server_escalation () =
  (* the pma pattern: any tracked flow through an accepted connection on
     a hard-coded listening address is High *)
  let server = sock_res ~origin:hard "LocalHost:11111" in
  check "server escalation" true
    (flow_sev ~via_server:server ~src:file_a ~src_origin:user_t
       ~target:`Sock ~target_origin:Taint.Tagset.empty ()
     = Some Severity.High)

let test_flow_trusted_source_skipped () =
  check "libc data is filtered" true
    (flow_sev ~src:bin_libc ~src_origin:Taint.Tagset.empty ~target:`File
       ~target_origin:hard ()
     = None)

let test_flow_stdout_silent () =
  let e =
    transfer
      ~sources:[ bin_mal, Taint.Tagset.empty ]
      ~target:{ r_kind = Harrier.Events.R_stdio; r_name = "STDOUT";
                r_origin = Taint.Tagset.empty }
      ()
  in
  let _, ws = judge e in
  check_int "stdio never warns" 0 (List.length ws)

(* ------------------------------------------------------------------ *)
(* Decisions                                                           *)

let test_auto_kill () =
  let d, _ = judge ~auto_kill:Severity.High (exec ()) in
  check "low does not kill at High" true (d = Osim.Kernel.Allow);
  let d, _ =
    judge ~auto_kill:Severity.High (exec ~origin:(tag_of [ sock_evil ]) ())
  in
  check "high kills at High" true (d = Osim.Kernel.Kill);
  let d, _ = judge ~auto_kill:Severity.Low (exec ()) in
  check "low kills at Low" true (d = Osim.Kernel.Kill);
  let d, _ = judge (exec ()) in
  check "no auto_kill always allows" true (d = Osim.Kernel.Allow)

let test_engine_kept_clean () =
  let s = System.create () in
  ignore (System.handle_event s (exec ()));
  ignore (System.handle_event s (exec ()));
  check_int "event facts are retracted" 0
    (List.length (Expert.Engine.facts (System.engine s)));
  check_int "both events warned" 2 (System.warning_count s)

let suite =
  [ Alcotest.test_case "severity order" `Quick test_severity_order;
    Alcotest.test_case "warning rare rendering" `Quick
      test_warning_pp_rare;
    Alcotest.test_case "warning dedup and max" `Quick
      test_warning_dedup_max;
    Alcotest.test_case "warning dedup multiplicity" `Quick
      test_warning_dedup_multiplicity;
    Alcotest.test_case "trust database" `Quick test_trust;
    Alcotest.test_case "fact encoding: exec" `Quick
      test_fact_encoding_exec;
    Alcotest.test_case "fact encoding: transfer" `Quick
      test_fact_encoding_transfer;
    Alcotest.test_case "origin values" `Quick test_origin_values;
    Alcotest.test_case "execve hardcoded warns Low" `Quick
      test_exec_hardcoded_low;
    Alcotest.test_case "execve from socket warns High" `Quick
      test_exec_socket_high;
    Alcotest.test_case "execve rare+late warns Medium" `Quick
      test_exec_rare_medium;
    Alcotest.test_case "execve user-named is silent" `Quick
      test_exec_user_silent;
    Alcotest.test_case "execve trusted origin is silent" `Quick
      test_exec_trusted_silent;
    Alcotest.test_case "clone thresholds" `Quick test_clone_thresholds;
    Alcotest.test_case "flow: binary to file" `Quick
      test_flow_binary_to_file;
    Alcotest.test_case "flow: name matrix" `Quick test_flow_file_matrix;
    Alcotest.test_case "flow: hardware" `Quick test_flow_hardware;
    Alcotest.test_case "flow: user exfiltration" `Quick
      test_flow_user_exfiltration;
    Alcotest.test_case "flow: server escalation" `Quick
      test_flow_server_escalation;
    Alcotest.test_case "flow: trusted source skipped" `Quick
      test_flow_trusted_source_skipped;
    Alcotest.test_case "flow: stdout silent" `Quick
      test_flow_stdout_silent;
    Alcotest.test_case "auto-kill decisions" `Quick test_auto_kill;
    Alcotest.test_case "engine kept clean" `Quick test_engine_kept_clean ]
