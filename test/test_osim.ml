(* Unit and integration tests for the simulated OS: filesystem, network,
   processes, and the kernel's syscall layer (driven by real guest
   programs). *)

open Osim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Filesystem                                                          *)

let test_fs_basics () =
  let fs = Fs.create () in
  check "absent" false (Fs.exists fs "/a");
  Fs.install fs "/a" "hello";
  check "present" true (Fs.exists fs "/a");
  Alcotest.(check (option string)) "contents" (Some "hello")
    (Fs.contents fs "/a");
  let f = Fs.ensure fs "/a" in
  check_str "read_at middle" "ell" (Fs.read_at f ~pos:1 ~len:3);
  check_str "read_at past end" "" (Fs.read_at f ~pos:99 ~len:3);
  check_str "read_at clamped" "lo" (Fs.read_at f ~pos:3 ~len:99)

let test_fs_write_grow () =
  let fs = Fs.create () in
  let f = Fs.ensure fs "/w" in
  Fs.write_at f ~pos:0 "abc";
  Fs.write_at f ~pos:5 "xy";  (* gap zero-filled *)
  check_int "grown" 7 (Fs.size f);
  check_str "gap zeroed" "abc\000\000xy"
    (Fs.read_at f ~pos:0 ~len:7);
  Fs.truncate f;
  check_int "truncated" 0 (Fs.size f)

let test_fs_image_preserved () =
  let fs = Fs.create () in
  Fs.install_image fs (Guest.Common.trivial "/bin/t");
  Fs.install fs "/bin/t" "bytes-on-disk";
  check "image kept across install" true (Fs.image_of fs "/bin/t" <> None);
  Alcotest.(check (option string)) "data updated" (Some "bytes-on-disk")
    (Fs.contents fs "/bin/t")

let test_fs_paths_sorted () =
  let fs = Fs.create () in
  Fs.install fs "/b" "";
  Fs.install fs "/a" "";
  Alcotest.(check (list string)) "sorted" [ "/a"; "/b" ] (Fs.paths fs)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)

let test_net_dns () =
  let net = Net.create () in
  Net.add_host net "h" 0x0A000001;
  check "resolve" true (Net.resolve net "h" = Some 0x0A000001);
  check "unknown" true (Net.resolve net "ghost" = None);
  check_str "reverse" "h" (Net.host_of_ip net 0x0A000001);
  check_str "dotted quad for unknown" "16.0.0.10"
    (Net.host_of_ip net 0x0A000010)

let test_net_hosts_db_format () =
  let net = Net.create () in
  Net.add_host net "ab" 0x01020304;
  let db = Net.hosts_db net in
  check_int "record is 20 bytes" 20 (String.length db);
  check_str "name padded" "ab" (String.sub db 0 2);
  check_int "pad byte" 0 (Char.code db.[2]);
  check_int "ip little-endian" 4 (Char.code db.[16])

let test_net_connect_and_actor () =
  let net = Net.create () in
  Net.add_host net "srv" 0x0A000002;
  Net.add_server net ~host:"srv" ~port:80
    { actor_host = "srv"; script = [ Net.Send "hi"; Net.Expect 3;
                                     Net.Send "bye"; Net.Close ] };
  let sock = Net.new_socket net in
  (match Net.connect net sock ~ip:0x0A000002 ~port:80 with
   | None -> Alcotest.fail "connect refused"
   | Some conn ->
     check_str "peer name" "srv:80" conn.peer;
     check_str "eager send" "hi" (Net.guest_recv conn 10);
     check_str "nothing yet" "" (Net.guest_recv conn 10);
     check "not closed yet" false conn.remote_closed;
     Net.guest_send net conn "ack";  (* satisfies Expect 3 *)
     check_str "scripted reply" "bye" (Net.guest_recv conn 10);
     check "closed after script" true conn.remote_closed)

let test_net_connect_refused () =
  let net = Net.create () in
  let sock = Net.new_socket net in
  check "no server" true (Net.connect net sock ~ip:1 ~port:2 = None)

let test_net_accept_queue () =
  let net = Net.create () in
  Net.add_incoming net ~port:9 { actor_host = "a"; script = [] };
  Net.add_incoming net ~port:9 { actor_host = "b"; script = [] };
  let sock = Net.new_socket net in
  sock.state <- Net.Listening 9;
  (match Net.accept net sock with
   | Some c -> check "first client first" true
                 (String.length c.peer >= 1 && c.peer.[0] = 'a')
   | None -> Alcotest.fail "no pending client");
  (match Net.accept net sock with
   | Some c -> check "second client next" true (c.peer.[0] = 'b')
   | None -> Alcotest.fail "second client missing");
  check "queue drained" true (Net.accept net sock = None)

let test_net_partial_recv () =
  let net = Net.create () in
  Net.add_host net "srv" 5;
  Net.add_server net ~host:"srv" ~port:1
    { actor_host = "srv"; script = [ Net.Send "abcdef" ] };
  let sock = Net.new_socket net in
  match Net.connect net sock ~ip:5 ~port:1 with
  | None -> Alcotest.fail "refused"
  | Some conn ->
    check_str "first chunk" "abc" (Net.guest_recv conn 3);
    check_str "rest" "def" (Net.guest_recv conn 10)

(* ------------------------------------------------------------------ *)
(* ABI                                                                 *)

let test_sockaddr_roundtrip () =
  let buf = Bytes.make 8 '\000' in
  Abi.write_sockaddr
    (fun a v -> Bytes.set buf a (Char.chr v))
    0 ~ip:0x0A0B0C0D ~port:4242;
  let read_word a = Int32.to_int (Bytes.get_int32_le buf a) land 0xFFFFFFFF in
  let ip, port = Abi.read_sockaddr read_word 0 in
  check_int "ip round trip" 0x0A0B0C0D ip;
  check_int "port round trip" 4242 port

let test_syscall_names () =
  check_str "execve" "SYS_execve" (Abi.syscall_name Abi.sys_execve);
  check_str "unknown" "SYS_999" (Abi.syscall_name 999)

(* ------------------------------------------------------------------ *)
(* Processes                                                           *)

let test_process_fds () =
  let p =
    Process.with_std_fds
      (Process.create ~pid:1 ~machine:(Vm.Machine.create ())
         ~exe_path:"/x" ~argv:[])
  in
  check "stdin" true (Process.fd p 0 = Some Process.Std_in);
  let fd = Process.alloc_fd p (Fd_file { path = "/f"; offset = 0; flags = 0 })
  in
  check_int "first alloc is 3" 3 fd;
  check "close" true (Process.close_fd p fd);
  check "double close" false (Process.close_fd p fd)

let test_process_fork_fds_independent () =
  let mk () =
    Process.create ~pid:1 ~machine:(Vm.Machine.create ()) ~exe_path:"/x"
      ~argv:[]
  in
  let parent = mk () and child = mk () in
  let _ =
    Process.alloc_fd parent (Fd_file { path = "/f"; offset = 5; flags = 0 })
  in
  Process.copy_fds ~src:parent ~dst:child;
  (match Process.fd child 3 with
   | Some (Fd_file fr) ->
     fr.offset <- 99;
     (match Process.fd parent 3 with
      | Some (Fd_file pr) -> check_int "offsets independent" 5 pr.offset
      | _ -> Alcotest.fail "parent fd lost")
   | _ -> Alcotest.fail "child fd missing")

(* ------------------------------------------------------------------ *)
(* Kernel end-to-end (guest programs)                                  *)

let world ?(programs = []) ?(files = []) ?(user_input = []) ?incoming ()
  =
  let fs = Fs.create () in
  List.iter (Fs.install_image fs) programs;
  List.iter (fun (p, d) -> Fs.install fs p d) files;
  let net = Net.create () in
  Net.add_host net "LocalHost" 0x0100007F;
  (match incoming with
   | Some (port, actor) -> Net.add_incoming net ~port actor
   | None -> ());
  Kernel.create ~fs ~net ~user_input ()

let run_main k path argv =
  (match Kernel.spawn k ~path ~argv with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  Kernel.run k ~max_ticks:100_000

let simple_exe body =
  let u = Asm.create ~path:"/bin/t" ~kind:Binary.Image.Executable
      ~base:0x1000 ()
  in
  Guest.Runtime.prologue u;
  Asm.label u "_start";
  body u;
  Guest.Runtime.sys_exit u 0;
  Asm.hlt u;
  Asm.finalize u

let test_kernel_exit_code () =
  let exe = simple_exe (fun u -> Guest.Runtime.sys_exit u 7) in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited 7) ] -> ()
  | _ -> Alcotest.failf "bad report: %a" Kernel.pp_report r

let test_kernel_console () =
  let exe = simple_exe (fun u -> Guest.Runtime.print u "m" "out!") in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "console captured" "out!" r.rep_console

let test_kernel_file_write () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "name" "/out.txt";
        Asm.asciz u "data" "persisted";
        Guest.Runtime.sys_creat u ~path:(Asm.lbl "name");
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_write u ~fd:Asm.esi ~buf:(Asm.lbl "data")
          ~len:(Asm.imm 9);
        Guest.Runtime.sys_close u ~fd:Asm.esi)
  in
  let k = world ~programs:[ exe ] () in
  ignore (run_main k "/bin/t" [ "/bin/t" ]);
  Alcotest.(check (option string)) "file persisted" (Some "persisted")
    (Fs.contents (Kernel.fs k) "/out.txt")

let test_kernel_stdin_script () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.sys_read u ~fd:(Asm.imm 0) ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 4);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:Asm.eax;
        Guest.Runtime.sys_read u ~fd:(Asm.imm 0) ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 16);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:Asm.eax)
  in
  let k = world ~programs:[ exe ] ~user_input:[ "abcdef"; "gh" ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  (* first read takes 4 of the first chunk; the second read gets only
     the remainder of that chunk (reads stop at chunk boundaries) *)
  check_str "chunked stdin" "abcdef" r.rep_console

let test_kernel_open_enoent () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "name" "/missing";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        (* exit code = eax & 0xff so we can observe the errno *)
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] ->
    check_int "negative errno" ((-Abi.enoent) land 0xFFFFFFFF) code
  | _ -> Alcotest.fail "no exit"

let test_kernel_append_flag () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "name" "/log";
        Asm.asciz u "data" "+x";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name")
          ~flags:Abi.(o_wronly lor o_append);
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_write u ~fd:Asm.esi ~buf:(Asm.lbl "data")
          ~len:(Asm.imm 2))
  in
  let k = world ~programs:[ exe ] ~files:[ "/log", "seed" ] () in
  ignore (run_main k "/bin/t" [ "/bin/t" ]);
  Alcotest.(check (option string)) "appended" (Some "seed+x")
    (Fs.contents (Kernel.fs k) "/log")

let test_kernel_fork_both_run () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.sys_fork u;
        Asm.testl u Asm.eax Asm.eax;
        Asm.jz u "child";
        Guest.Runtime.print u "p" "P";
        Guest.Runtime.sys_exit u 0;
        Asm.label u "child";
        Guest.Runtime.print u "c" "C";
        Guest.Runtime.sys_exit u 0)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_int "two processes" 2 (List.length r.rep_final);
  check_int "one clone" 1 r.rep_clones;
  check "both wrote" true
    (Astring.String.is_infix ~affix:"P" r.rep_console
     && Astring.String.is_infix ~affix:"C" r.rep_console)

let test_kernel_fork_limit () =
  let exe =
    simple_exe (fun u ->
        Asm.label u "loop";
        Guest.Runtime.sys_fork u;
        Asm.testl u Asm.eax Asm.eax;
        Asm.js u "done";  (* EAGAIN -> negative *)
        Asm.jnz u "loop";  (* parent keeps forking *)
        Guest.Runtime.sys_sleep u 2000;  (* children linger *)
        Guest.Runtime.sys_exit u 0;
        Asm.label u "done";
        Guest.Runtime.print u "m" "full")
  in
  let fs = Fs.create () in
  Fs.install_image fs exe;
  let k =
    Kernel.create ~max_procs:5 ~fs ~net:(Net.create ()) ()
  in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check "fork eventually fails" true
    (Astring.String.is_infix ~affix:"full" r.rep_console);
  check "bounded" true (r.rep_max_live <= 5)

let test_kernel_execve () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "prog" "/bin/next";
        Guest.Runtime.sys_execve u ~path:(Asm.lbl "prog") ())
  in
  let next = Guest.Common.trivial ~output:"replaced" "/bin/next" in
  let k = world ~programs:[ exe; next ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "new image ran" "replaced" r.rep_console;
  (match r.rep_final with
   | [ (_, exe_path, _) ] -> check_str "exe path updated" "/bin/next" exe_path
   | _ -> Alcotest.fail "process table wrong")

let test_kernel_execve_enoexec () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "prog" "/plain.txt";
        Guest.Runtime.sys_execve u ~path:(Asm.lbl "prog") ();
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] ~files:[ "/plain.txt", "not code" ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] ->
    check_int "ENOEXEC" ((-Abi.enoexec) land 0xFFFFFFFF) code
  | _ -> Alcotest.fail "no exit"

let test_kernel_time_getpid () =
  let exe =
    simple_exe (fun u ->
        Asm.movl u Asm.eax (Asm.imm Abi.sys_getpid);
        Asm.int80 u;
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (pid, _, Process.Exited code) ] -> check_int "getpid" pid code
  | _ -> Alcotest.fail "no exit"

let test_kernel_sleep_ordering () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.sys_fork u;
        Asm.testl u Asm.eax Asm.eax;
        Asm.jz u "child";
        Guest.Runtime.sys_sleep u 5_000;
        Guest.Runtime.print u "p" "late";
        Guest.Runtime.sys_exit u 0;
        Asm.label u "child";
        Guest.Runtime.print u "c" "early";
        Guest.Runtime.sys_exit u 0)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "sleeper finishes last" "earlylate" r.rep_console

let test_kernel_server_accept () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.static_sockaddr u "sa" ~ip:0x0100007F ~port:7777;
        Guest.Runtime.sys_socket u;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_bind u ~fd:Asm.esi ~addr:(Asm.lbl "sa");
        Guest.Runtime.sys_listen u ~fd:Asm.esi;
        Guest.Runtime.sys_accept u ~fd:Asm.esi;
        Asm.movl u Asm.edi Asm.eax;
        Guest.Runtime.sys_recv u ~fd:Asm.edi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 16);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:Asm.eax)
  in
  let k =
    world ~programs:[ exe ]
      ~incoming:(7777, { Net.actor_host = "cli";
                         script = [ Net.Send "ping" ] })
      ()
  in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "server echoed client bytes" "ping" r.rep_console

let test_kernel_deadlock_reaped () =
  let exe =
    simple_exe (fun u ->
        (* recv on a listening socket that nobody will ever dial *)
        Guest.Runtime.static_sockaddr u "sa" ~ip:0x0100007F ~port:1;
        Guest.Runtime.sys_socket u;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_bind u ~fd:Asm.esi ~addr:(Asm.lbl "sa");
        Guest.Runtime.sys_listen u ~fd:Asm.esi;
        Guest.Runtime.sys_accept u ~fd:Asm.esi)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Killed _) ] -> ()
  | _ -> Alcotest.fail "blocked-forever process should be reaped"

let test_kernel_unknown_syscall () =
  let exe =
    simple_exe (fun u ->
        Asm.movl u Asm.eax (Asm.imm 777);
        Asm.int80 u;
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] ->
    check_int "ENOSYS" ((-38) land 0xFFFFFFFF) code
  | _ -> Alcotest.fail "no exit"

let test_kernel_dup () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "name" "/src";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;
        (* read 2 bytes, dup, read 2 more on the dup: offsets are
           independent in our simplified dup *)
        Guest.Runtime.sys_read u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 2);
        Asm.movl u Asm.ebx Asm.esi;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_dup);
        Asm.int80 u;
        Asm.movl u Asm.edi Asm.eax;
        Guest.Runtime.sys_read u ~fd:Asm.edi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 2);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 2))
  in
  let k = world ~programs:[ exe ] ~files:[ "/src", "abcdef" ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "dup kept the offset" "cd" r.rep_console

let test_kernel_execve_argv_passing () =
  (* argv pointers passed to execve become the new process's argv *)
  let launcher =
    simple_exe (fun u ->
        Asm.asciz u "prog" "/bin/echoarg";
        Asm.asciz u "arg1" "payload-arg";
        (* argv array: [prog; arg1; NULL] *)
        Asm.movl u (Asm.mlbl "__scratch") (Asm.lbl "prog");
        Asm.movl u (Asm.mlbl ~off:4 "__scratch") (Asm.lbl "arg1");
        Asm.movl u (Asm.mlbl ~off:8 "__scratch") (Asm.imm 0);
        Guest.Runtime.sys_execve u ~path:(Asm.lbl "prog")
          ~argv:(Asm.lbl "__scratch") ())
  in
  let echoarg =
    let u = Asm.create ~path:"/bin/echoarg" ~kind:Binary.Image.Executable
        ~base:0x1000 ()
    in
    Guest.Runtime.prologue u;
    Asm.space u "argp" 4;
    Asm.label u "_start";
    Guest.Runtime.save_argv u 1 "argp";
    Asm.movl u Asm.esi (Asm.mlbl "argp");
    Guest.Runtime.strlen u ~id:"a" ~src:ESI ~dst:EDX;
    Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.mlbl "argp")
      ~len:Asm.edx;
    Guest.Runtime.sys_exit u 0;
    Asm.hlt u;
    Asm.finalize u
  in
  let k = world ~programs:[ launcher; echoarg ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "argv crossed execve" "payload-arg" r.rep_console

let test_kernel_env_on_stack () =
  let exe =
    simple_exe (fun u ->
        Asm.space u "envp" 4;
        Guest.Runtime.save_env u 1 "envp";
        Asm.movl u Asm.esi (Asm.mlbl "envp");
        Guest.Runtime.strlen u ~id:"e" ~src:ESI ~dst:EDX;
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.mlbl "envp")
          ~len:Asm.edx)
  in
  let fs = Fs.create () in
  Fs.install_image fs exe;
  let k = Kernel.create ~fs ~net:(Net.create ()) () in
  (match Kernel.spawn ~env:[ "A=1"; "B=two" ] k ~path:"/bin/t"
           ~argv:[ "/bin/t" ]
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let r = Kernel.run k ~max_ticks:50_000 in
  check_str "env[1] readable" "B=two" r.rep_console

let test_kernel_close_invalidates_socket () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.static_sockaddr u "sa" ~ip:0x0100007F ~port:70;
        Guest.Runtime.sys_socket u;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_close u ~fd:Asm.esi;
        (* connect on the closed fd must fail with EBADF *)
        Guest.Runtime.sys_connect u ~fd:Asm.esi ~addr:(Asm.lbl "sa");
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] ->
    check_int "EBADF after close" ((-Abi.ebadf) land 0xFFFFFFFF) code
  | _ -> Alcotest.fail "no exit"

let test_net_listen_unbound () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.sys_socket u;
        Asm.movl u Asm.esi Asm.eax;
        (* listen without bind must fail with EINVAL *)
        Guest.Runtime.sys_listen u ~fd:Asm.esi;
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] ->
    check_int "EINVAL" ((-Abi.einval) land 0xFFFFFFFF) code
  | _ -> Alcotest.fail "no exit"

let test_net_recv_eof_after_close () =
  (* the remote sends then closes: recv drains the data, then returns 0 *)
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.static_sockaddr u "sa" ~ip:0x0A000001 ~port:80;
        Guest.Runtime.sys_socket u;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_connect u ~fd:Asm.esi ~addr:(Asm.lbl "sa");
        Guest.Runtime.sys_recv u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 32);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:Asm.eax;
        (* second recv: remote closed, EOF *)
        Guest.Runtime.sys_recv u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 32);
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let fs = Fs.create () in
  Fs.install_image fs exe;
  let net = Net.create () in
  Net.add_host net "srv" 0x0A000001;
  Net.add_server net ~host:"srv" ~port:80
    { actor_host = "srv"; script = [ Net.Send "bye"; Net.Close ] };
  let k = Kernel.create ~fs ~net () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "data drained first" "bye" r.rep_console;
  match r.rep_final with
  | [ (_, _, Process.Exited 0) ] -> ()
  | _ -> Alcotest.fail "recv after close should return 0"

let test_net_connect_refused_errno () =
  let exe =
    simple_exe (fun u ->
        Guest.Runtime.static_sockaddr u "sa" ~ip:0x0A000099 ~port:9;
        Guest.Runtime.sys_socket u;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_connect u ~fd:Asm.esi ~addr:(Asm.lbl "sa");
        Asm.movl u Asm.ebx Asm.eax;
        Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
        Asm.int80 u)
  in
  let k = world ~programs:[ exe ] () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] ->
    check_int "ECONNREFUSED" ((-Abi.econnrefused) land 0xFFFFFFFF) code
  | _ -> Alcotest.fail "no exit"

(* ------------------------------------------------------------------ *)
(* Syscall error paths                                                 *)

(* Run [body] and exit with eax's low byte, so the test can observe a
   syscall's (negative) errno in the exit code. *)
let errno_exe body =
  simple_exe (fun u ->
      body u;
      Asm.movl u Asm.ebx Asm.eax;
      Asm.movl u Asm.eax (Asm.imm Abi.sys_exit);
      Asm.int80 u)

let errno_of_run ?(files = []) ?fault exe =
  let k =
    match fault with
    | None -> world ~programs:[ exe ] ~files ()
    | Some fault ->
      let fs = Fs.create () in
      Fs.install_image fs exe;
      List.iter (fun (p, d) -> Fs.install fs p d) files;
      let net = Net.create () in
      Net.add_host net "LocalHost" 0x0100007F;
      Kernel.create ~fs ~net ~fault ()
  in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  match r.rep_final with
  | [ (_, _, Process.Exited code) ] -> code
  | _ -> Alcotest.fail "no clean exit"

let check_errno name e code = check_int name ((-e) land 0xFFFFFFFF) code

let test_kernel_read_after_close () =
  let exe =
    errno_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_close u ~fd:Asm.esi;
        Guest.Runtime.sys_read u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 4))
  in
  check_errno "read on closed fd" Abi.ebadf
    (errno_of_run ~files:[ "/f", "data" ] exe)

let test_kernel_double_close () =
  let exe =
    errno_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_close u ~fd:Asm.esi;
        Guest.Runtime.sys_close u ~fd:Asm.esi)
  in
  check_errno "second close" Abi.ebadf
    (errno_of_run ~files:[ "/f", "data" ] exe)

let test_kernel_read_on_wronly () =
  let exe =
    errno_exe (fun u ->
        Asm.asciz u "name" "/out";
        Guest.Runtime.sys_creat u ~path:(Asm.lbl "name");
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_read u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 4))
  in
  check_errno "read on write-only fd" Abi.ebadf (errno_of_run exe)

let test_kernel_write_on_rdonly () =
  let exe =
    errno_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_write u ~fd:Asm.esi ~buf:(Asm.lbl "name")
          ~len:(Asm.imm 2))
  in
  check_errno "write on read-only fd" Abi.ebadf
    (errno_of_run ~files:[ "/f", "data" ] exe)

let test_kernel_dup_bad_fd () =
  let exe =
    errno_exe (fun u ->
        Asm.movl u Asm.ebx (Asm.imm 99);
        Asm.movl u Asm.eax (Asm.imm Abi.sys_dup);
        Asm.int80 u)
  in
  check_errno "dup of bad fd" Abi.ebadf (errno_of_run exe)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let plan spec =
  match Fault.parse spec with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_fault_open_enoent () =
  (* /f exists, but the plan makes its open fail *)
  let exe =
    errno_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0)
  in
  check_errno "injected ENOENT" Abi.enoent
    (errno_of_run ~files:[ "/f", "data" ] ~fault:(plan "SYS_open@/f=enoent")
       exe)

let test_fault_nth_occurrence () =
  (* only the second open of the same path is faulted *)
  let exe =
    errno_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;  (* first open must succeed *)
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0)
  in
  check_errno "second open faulted" Abi.eio
    (errno_of_run ~files:[ "/f", "data" ] ~fault:(plan "SYS_open#2=eio") exe)

let test_fault_short_read () =
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_read u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 6);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:Asm.eax)
  in
  let fs = Fs.create () in
  Fs.install_image fs exe;
  Fs.install fs "/f" "abcdef";
  let net = Net.create () in
  Net.add_host net "LocalHost" 0x0100007F;
  let k = Kernel.create ~fs ~net ~fault:(plan "SYS_read@/f=short") () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  (* len 6 truncated to 3: the guest echoes only what the read returned *)
  check_str "short read truncates" "abc" r.rep_console

let test_fault_stall_not_livelock () =
  (* a stalled read blocks for one scheduler round, then completes *)
  let exe =
    simple_exe (fun u ->
        Asm.asciz u "name" "/f";
        Guest.Runtime.sys_open u ~path:(Asm.lbl "name") ~flags:0;
        Asm.movl u Asm.esi Asm.eax;
        Guest.Runtime.sys_read u ~fd:Asm.esi ~buf:(Asm.lbl "__buf")
          ~len:(Asm.imm 4);
        Guest.Runtime.sys_write u ~fd:(Asm.imm 1) ~buf:(Asm.lbl "__buf")
          ~len:Asm.eax)
  in
  let fs = Fs.create () in
  Fs.install_image fs exe;
  Fs.install fs "/f" "data";
  let net = Net.create () in
  Net.add_host net "LocalHost" 0x0100007F;
  let k = Kernel.create ~fs ~net ~fault:(plan "SYS_read@/f=stall") () in
  let r = run_main k "/bin/t" [ "/bin/t" ] in
  check_str "stalled read completed" "data" r.rep_console

let test_fault_decisions_deterministic () =
  let probe () =
    let st = Fault.start (Fault.seeded 7) in
    List.map
      (fun (call, res, sock) -> Fault.decide st ~call ~res ~sock)
      [ "SYS_open", "/etc/passwd", false; "SYS_open", "/etc/passwd", false;
        "SYS_read", "stdin", false; "SYS_read", "peer:80", true;
        "SYS_clone", "", false; "SYS_open", "/tmp/x", false ]
  in
  check "same seed, same decisions" true (probe () = probe ())

let suite =
  [ Alcotest.test_case "fs basics" `Quick test_fs_basics;
    Alcotest.test_case "fs write grows files" `Quick test_fs_write_grow;
    Alcotest.test_case "fs image preserved by install" `Quick
      test_fs_image_preserved;
    Alcotest.test_case "fs paths sorted" `Quick test_fs_paths_sorted;
    Alcotest.test_case "net dns" `Quick test_net_dns;
    Alcotest.test_case "net hosts.db format" `Quick
      test_net_hosts_db_format;
    Alcotest.test_case "net connect and actor script" `Quick
      test_net_connect_and_actor;
    Alcotest.test_case "net connect refused" `Quick
      test_net_connect_refused;
    Alcotest.test_case "net accept queue order" `Quick
      test_net_accept_queue;
    Alcotest.test_case "net partial recv" `Quick test_net_partial_recv;
    Alcotest.test_case "sockaddr round trip" `Quick
      test_sockaddr_roundtrip;
    Alcotest.test_case "syscall names" `Quick test_syscall_names;
    Alcotest.test_case "process fd table" `Quick test_process_fds;
    Alcotest.test_case "fork fd independence" `Quick
      test_process_fork_fds_independent;
    Alcotest.test_case "kernel exit code" `Quick test_kernel_exit_code;
    Alcotest.test_case "kernel console capture" `Quick
      test_kernel_console;
    Alcotest.test_case "kernel file write persists" `Quick
      test_kernel_file_write;
    Alcotest.test_case "kernel stdin scripting" `Quick
      test_kernel_stdin_script;
    Alcotest.test_case "kernel open ENOENT" `Quick
      test_kernel_open_enoent;
    Alcotest.test_case "kernel O_APPEND" `Quick test_kernel_append_flag;
    Alcotest.test_case "kernel fork runs both sides" `Quick
      test_kernel_fork_both_run;
    Alcotest.test_case "kernel fork limit (EAGAIN)" `Quick
      test_kernel_fork_limit;
    Alcotest.test_case "kernel execve replaces image" `Quick
      test_kernel_execve;
    Alcotest.test_case "kernel execve ENOEXEC" `Quick
      test_kernel_execve_enoexec;
    Alcotest.test_case "kernel getpid" `Quick test_kernel_time_getpid;
    Alcotest.test_case "kernel sleep ordering" `Quick
      test_kernel_sleep_ordering;
    Alcotest.test_case "kernel server accept" `Quick
      test_kernel_server_accept;
    Alcotest.test_case "kernel deadlock reaped" `Quick
      test_kernel_deadlock_reaped;
    Alcotest.test_case "kernel unknown syscall" `Quick
      test_kernel_unknown_syscall;
    Alcotest.test_case "kernel dup" `Quick test_kernel_dup;
    Alcotest.test_case "kernel execve argv passing" `Quick
      test_kernel_execve_argv_passing;
    Alcotest.test_case "kernel env on initial stack" `Quick
      test_kernel_env_on_stack;
    Alcotest.test_case "kernel close invalidates socket" `Quick
      test_kernel_close_invalidates_socket;
    Alcotest.test_case "listen on unbound socket" `Quick
      test_net_listen_unbound;
    Alcotest.test_case "recv EOF after remote close" `Quick
      test_net_recv_eof_after_close;
    Alcotest.test_case "connect refused errno" `Quick
      test_net_connect_refused_errno;
    Alcotest.test_case "read after close (EBADF)" `Quick
      test_kernel_read_after_close;
    Alcotest.test_case "double close (EBADF)" `Quick
      test_kernel_double_close;
    Alcotest.test_case "read on write-only fd (EBADF)" `Quick
      test_kernel_read_on_wronly;
    Alcotest.test_case "write on read-only fd (EBADF)" `Quick
      test_kernel_write_on_rdonly;
    Alcotest.test_case "dup of bad fd (EBADF)" `Quick
      test_kernel_dup_bad_fd;
    Alcotest.test_case "fault: injected open ENOENT" `Quick
      test_fault_open_enoent;
    Alcotest.test_case "fault: nth occurrence" `Quick
      test_fault_nth_occurrence;
    Alcotest.test_case "fault: short read" `Quick test_fault_short_read;
    Alcotest.test_case "fault: stall completes" `Quick
      test_fault_stall_not_livelock;
    Alcotest.test_case "fault: seeded decisions deterministic" `Quick
      test_fault_decisions_deterministic ]
