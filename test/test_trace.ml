(* Tests for trace recording and offline replay. *)

let check = Alcotest.(check bool)
let sp = Taint.Space.create ()
let check_int = Alcotest.(check int)

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "missing scenario %s" name

let events_equal (a : Harrier.Events.t) (b : Harrier.Events.t) =
  (* structural equality via the printed form — tag sets are canonical *)
  Fmt.to_to_string Harrier.Events.pp a = Fmt.to_to_string Harrier.Events.pp b

let test_roundtrip_session () =
  let r = Hth.Session.run (find "pma").sc_setup in
  match Hth.Trace.of_string (Hth.Trace.record r) with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
    check_int "event count preserved" (List.length r.events)
      (List.length events);
    check "events preserved" true (List.for_all2 events_equal r.events events)

let test_roundtrip_binary_head () =
  (* heads can carry raw executable bytes *)
  let e =
    Harrier.Events.Transfer
      { call = "SYS_write";
        data = (Taint.Tagset.singleton sp) (Taint.Source.Socket "h:1");
        head = "MZ\x90\x00\x01\xFF\n\t\"quoted\"";
        sources = [ Taint.Source.Socket "h:1", Taint.Tagset.empty ];
        guard = [];
        target =
          { r_kind = Harrier.Events.R_file; r_name = "/t";
            r_origin = Taint.Tagset.empty };
        via_server = None; len = 10;
        meta = { pid = 1; time = 2; freq = 3; addr = 4; step = 5 } }
  in
  match Hth.Trace.of_string (Hth.Trace.to_string [ e ]) with
  | Ok [ Harrier.Events.Transfer { head; _ } ] ->
    Alcotest.(check string) "binary head survives"
      "MZ\x90\x00\x01\xFF\n\t\"quoted\"" head
  | Ok _ -> Alcotest.fail "wrong event shape"
  | Error msg -> Alcotest.fail msg

let test_replay_matches_live () =
  List.iter
    (fun name ->
      let r = Hth.Session.run (find name).sc_setup in
      let replayed = Hth.Trace.replay r.events in
      check_int
        (name ^ ": replay reproduces the warnings")
        (List.length r.warnings)
        (List.length replayed);
      check (name ^ ": same maximum severity") true
        (Secpert.Warning.max_severity replayed = r.max_severity))
    [ "grabem"; "pma"; "Hardcode"; "pico"; "stealth dropper" ]

let test_replay_with_different_policy () =
  (* offline re-judging: replay an old trace under a new configuration *)
  let r = Hth.Session.run (find "ElmExploit").sc_setup in
  let default_warnings = Hth.Trace.replay r.events in
  let paranoid =
    Hth.Trace.replay ~trust:Secpert.Trust.nothing r.events
  in
  check "default trust misses the exec" true
    (not
       (List.exists
          (fun w -> w.Secpert.Warning.rule = "check_execve")
          default_warnings));
  check "re-judged without trust catches it" true
    (List.exists
       (fun w -> w.Secpert.Warning.rule = "check_execve")
       paranoid)

let test_bad_traces_rejected () =
  List.iter
    (fun bad ->
      match Hth.Trace.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad trace %S" bad)
    [ "(unknown-event 1)"; "(exec)"; "(clone 1 2)"; "(access SYS_open)";
      "(" ]

let test_empty_trace () =
  match Hth.Trace.of_string "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom events"
  | Error msg -> Alcotest.fail msg

let suite =
  [ Alcotest.test_case "session trace round trip" `Quick
      test_roundtrip_session;
    Alcotest.test_case "binary head round trip" `Quick
      test_roundtrip_binary_head;
    Alcotest.test_case "replay matches live warnings" `Quick
      test_replay_matches_live;
    Alcotest.test_case "offline re-judging with new policy" `Quick
      test_replay_with_different_policy;
    Alcotest.test_case "bad traces rejected" `Quick
      test_bad_traces_rejected;
    Alcotest.test_case "empty trace" `Quick test_empty_trace ]
