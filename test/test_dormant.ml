(* The dormancy harness (DESIGN.md §16).

   Every dormant scenario family runs in three modes — never triggered,
   triggered, triggered-then-disarmed — and must produce a clean
   verdict, a warning with a trigger-citing evidence chain, and a clean
   verdict respectively.  The armed path must execute only in the
   triggered mode, and even then stay out of the hot-block profile
   (cold code is the point).  Verdicts and traces must be byte-stable
   across sequential vs fleet execution and across fault seeds, and a
   tick budget that expires before the trigger arrives must degrade
   the run, never flip the verdict. *)

let dormant_names =
  [ "sleeper daemon idle"; "sleeper daemon triggered";
    "sleeper daemon disarmed"; "logic bomb idle"; "logic bomb triggered";
    "logic bomb defused"; "worm pair idle"; "worm pair triggered";
    "worm pair recalled"; "update client idle"; "update client triggered";
    "update client rejected" ]

let triggered_names =
  [ "sleeper daemon triggered"; "logic bomb triggered";
    "worm pair triggered"; "update client triggered" ]

let find name =
  match Guest.Corpus.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %S missing from corpus" name

let contains s affix = Astring.String.is_infix ~affix s

(* ------------------------------------------------------------------ *)
(* three modes: clean / warning-with-evidence / clean                  *)

let modes_case =
  Alcotest.test_case "three modes: clean / warning / clean" `Quick
    (fun () ->
      List.iter
        (fun name ->
          let sc = find name in
          let r = Guest.Scenario.run sc in
          Alcotest.(check bool) (name ^ ": verdict") true
            (Guest.Scenario.matches sc.sc_expected
               (Hth.Report.verdict r));
          if List.mem name triggered_names then begin
            Alcotest.(check bool) (name ^ ": warned") true
              (r.distinct <> []);
            (* every triggered warning chain carries evidence *)
            List.iter
              (fun (w : Secpert.Warning.t) ->
                Alcotest.(check bool)
                  (name ^ ": warning has evidence") false
                  (Secpert.Evidence.is_empty w.evidence))
              r.distinct
          end
          else
            Alcotest.(check int) (name ^ ": silent") 0
              (List.length r.warnings))
        dormant_names)

(* The socket-triggered families must carry a check_trigger warning
   whose evidence origins cite the trigger input — the remote peer
   whose bytes steered control flow — in the "trigger" role. *)
let trigger_evidence_case =
  Alcotest.test_case "trigger warnings cite the trigger input" `Quick
    (fun () ->
      List.iter
        (fun (name, peer) ->
          let r = Guest.Scenario.run (find name) in
          match
            List.find_opt
              (fun (w : Secpert.Warning.t) ->
                String.equal w.rule "check_trigger")
              r.distinct
          with
          | None -> Alcotest.failf "%s: no check_trigger warning" name
          | Some w ->
            Alcotest.(check bool) (name ^ ": rare reinforcement") true
              w.rare;
            Alcotest.(check bool) (name ^ ": High") true
              (w.severity = Secpert.Severity.High);
            Alcotest.(check bool) (name ^ ": message cites the peer") true
              (contains w.message peer);
            let triggers =
              List.filter
                (fun (o : Secpert.Evidence.origin_ref) ->
                  String.equal o.og_role "trigger")
                w.evidence.origins
            in
            Alcotest.(check bool) (name ^ ": trigger origin present") true
              (List.exists
                 (fun (o : Secpert.Evidence.origin_ref) ->
                   String.equal o.og_type "SOCKET"
                   && contains o.og_name peer)
                 triggers);
            (* the chain resolves to concrete trace steps *)
            Alcotest.(check bool) (name ^ ": matched facts recorded") true
              (w.evidence.facts <> []))
        [ "sleeper daemon triggered", "attacker";
          "worm pair triggered", "victim.example";
          "update client triggered", "mirror.example" ];
      (* the logic bomb's trigger is the hosts database: its flow
         warning must cite the database file as the data's source *)
      let r = Guest.Scenario.run (find "logic bomb triggered") in
      match r.distinct with
      | [ w ] ->
        Alcotest.(check string) "logic bomb rule" "check_write" w.rule;
        Alcotest.(check bool) "cites the hosts db" true
          (List.exists
             (fun (o : Secpert.Evidence.origin_ref) ->
               String.equal o.og_role "source"
               && String.equal o.og_type "FILE"
               && String.equal o.og_name "/etc/hosts.db")
             w.evidence.origins)
      | ws ->
        Alcotest.failf "logic bomb: expected one distinct warning, got %d"
          (List.length ws))

(* ------------------------------------------------------------------ *)
(* the armed path is executed only when triggered, and stays cold      *)

let families =
  [ "sleeper daemon", Guest.Dormant.sleeper_payload;
    "logic bomb", Guest.Dormant.bomb_payload;
    "worm pair", Guest.Dormant.worm_payload;
    "update client", Guest.Dormant.update_payload ]

let mode_suffixes =
  [ "sleeper daemon", [ "idle"; "triggered"; "disarmed" ];
    "logic bomb", [ "idle"; "triggered"; "defused" ];
    "worm pair", [ "idle"; "triggered"; "recalled" ];
    "update client", [ "idle"; "triggered"; "rejected" ] ]

let armed_path_case =
  Alcotest.test_case "armed path in the profile only when triggered"
    `Quick (fun () ->
      List.iter
        (fun (family, (lo, hi)) ->
          Alcotest.(check bool) (family ^ ": payload range sane") true
            (lo > 0 && hi > lo);
          let in_range a = a >= lo && a < hi in
          List.iter
            (fun suffix ->
              let name = family ^ " " ^ suffix in
              let r = Guest.Scenario.run (find name) in
              let armed_events =
                List.filter
                  (fun e -> in_range (Harrier.Events.meta_of e).addr)
                  r.events
              in
              if String.equal suffix "triggered" then
                Alcotest.(check bool)
                  (name ^ ": armed path executed") true
                  (armed_events <> [])
              else
                Alcotest.(check int)
                  (name ^ ": armed path never entered") 0
                  (List.length armed_events);
              (* cold even when armed: the payload never makes the
                 hot-block profile *)
              Alcotest.(check bool)
                (name ^ ": armed path out of the hot blocks") false
                (List.exists (fun (_, addr, _) -> in_range addr)
                   r.hot_blocks))
            (List.assoc family mode_suffixes))
        families)

(* ------------------------------------------------------------------ *)
(* byte-stability: sequential vs fleet, across seeds                   *)

let check_same_trace msg ~expected ~actual =
  match Hth.Golden.first_divergence ~expected ~actual with
  | None -> ()
  | Some d -> Alcotest.failf "%s@.%s" msg (Hth.Golden.report ~name:msg d)

let fleet_outcomes ~jobs ?fault names =
  let ex =
    Fleet.Executor.create ~jobs [ "default", Hth.Engine.create () ]
  in
  let outs =
    Fleet.Executor.run_all ex
      (List.map
         (fun n -> Fleet.Executor.job ?fault ~trace:true (find n).sc_setup)
         names)
  in
  Fleet.Executor.shutdown ex;
  outs

let fleet_determinism_case =
  Alcotest.test_case "jobs 1 vs jobs 2, five fault seeds" `Quick (fun () ->
      (* unfaulted first: the dormancy machinery (net Delay wakes,
         scheduler fast-forward) must not depend on worker count *)
      let seq = fleet_outcomes ~jobs:1 dormant_names in
      let par = fleet_outcomes ~jobs:2 dormant_names in
      List.iter2
        (fun (a : Fleet.Executor.outcome) (b : Fleet.Executor.outcome) ->
          let name = List.nth dormant_names a.o_seq in
          check_same_trace (name ^ ": jobs=2 vs jobs=1")
            ~expected:(Option.value ~default:"" a.o_trace)
            ~actual:(Option.value ~default:"" b.o_trace))
        seq par;
      List.iter
        (fun seed ->
          let fault = Osim.Fault.seeded seed in
          let seq = fleet_outcomes ~jobs:1 ~fault dormant_names in
          let par = fleet_outcomes ~jobs:2 ~fault dormant_names in
          List.iter2
            (fun (a : Fleet.Executor.outcome)
                 (b : Fleet.Executor.outcome) ->
              let name = List.nth dormant_names a.o_seq in
              (match a.o_result, b.o_result with
               | Ok _, Ok _ | Error _, Error _ -> ()
               | _ ->
                 Alcotest.failf "%s seed %d: outcome class diverged" name
                   seed);
              check_same_trace
                (Printf.sprintf "%s seed %d: jobs=2 vs jobs=1" name seed)
                ~expected:(Option.value ~default:"" a.o_trace)
                ~actual:(Option.value ~default:"" b.o_trace))
            seq par)
        [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* no-partial-match arming (satellite: qcheck)                         *)

let run_sleeper_with bytes =
  let sc =
    Guest.Dormant.sleeper_daemon ~name:"sleeper probe"
      ~descr:"qcheck trigger-prefix probe" ~expected:Guest.Scenario.Benign
      ~script:
        Osim.Net.[ Delay Guest.Dormant.trigger_delay; Send bytes; Close ]
  in
  Guest.Scenario.run sc

let trigger_bytes_gen =
  (* near-miss-rich alphabet: the magic's own characters plus noise *)
  QCheck.string_gen_of_size (QCheck.Gen.int_bound 12)
    (QCheck.Gen.oneofl [ 'A'; 'R'; 'M'; '!'; 'D'; 'I'; 'S'; 'X' ])

let no_false_arming_prop =
  QCheck.Test.make ~count:40 ~name:"random prefixes never false-arm"
    trigger_bytes_gen (fun bytes ->
      QCheck.assume (not (contains bytes Guest.Dormant.magic_arm));
      let r = run_sleeper_with bytes in
      r.max_severity = None && r.warnings = [])

let automaton_case =
  Alcotest.test_case "byte automaton: exact-match arming only" `Quick
    (fun () ->
      let arms bytes =
        (run_sleeper_with bytes).max_severity = Some Secpert.Severity.High
      in
      (* overlap fallback: a repeated first byte must not eat the match *)
      Alcotest.(check bool) "AARM! arms" true (arms "AARM!");
      Alcotest.(check bool) "junk-wrapped magic arms" true
        (arms "XXARM!XX");
      Alcotest.(check bool) "interleaved near-misses never arm" false
        (arms "ARMARM-AR!M-ARM");
      Alcotest.(check bool) "disarm alone is not the arm magic" false
        (arms "DIS!");
      Alcotest.(check bool) "re-armed after disarm stays armed" true
        (arms "ARM!DIS!ARM!");
      (* the automaton is per byte: a magic split across deliveries
         still matches *)
      let split =
        Guest.Dormant.sleeper_daemon ~name:"sleeper split"
          ~descr:"magic split across two deliveries"
          ~expected:(Guest.Scenario.Malicious Secpert.Severity.High)
          ~script:
            Osim.Net.[ Delay Guest.Dormant.trigger_delay; Send "AR";
                       Delay 200; Send "M!"; Close ]
      in
      Alcotest.(check bool) "split delivery arms" true
        (Guest.Scenario.passes split))

(* ------------------------------------------------------------------ *)
(* fault injection x dormancy (satellite: chaos matrix)                *)

let capture ?fault (sc : Guest.Scenario.t) =
  let buf = Buffer.create 4096 in
  let r =
    Obs.Trace.to_buffer buf;
    Fun.protect ~finally:Obs.Trace.disable (fun () ->
        Hth.Session.run ?fault sc.sc_setup)
  in
  Buffer.contents buf, r

let plan spec =
  match Osim.Fault.parse spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad fault plan %S: %s" spec e

let fault_matrix_case =
  Alcotest.test_case "faults on the trigger channel" `Quick (fun () ->
      let sc = find "sleeper daemon triggered" in
      let check_fault spec ~expect_armed =
        let fault = plan spec in
        let t1, r1 = capture ~fault sc in
        let t2, r2 = capture ~fault sc in
        check_same_trace (spec ^ ": deterministic") ~expected:t1
          ~actual:t2;
        (match expect_armed with
         | true ->
           Alcotest.(check bool) (spec ^ ": still arms") true
             (r1.max_severity = Some Secpert.Severity.High);
           Alcotest.(check bool) (spec ^ ": trigger warning survives")
             true
             (List.exists
                (fun (w : Secpert.Warning.t) ->
                  String.equal w.rule "check_trigger")
                r1.distinct)
         | false ->
           Alcotest.(check bool) (spec ^ ": never arms") true
             (r1.max_severity = None));
        ignore r2
      in
      (* a reset trigger channel delivers no magic: dormancy forever
         (recv decodes as SYS_read; the attacker peer names the conn) *)
      check_fault "SYS_read@attacker=econnreset" ~expect_armed:false;
      (* a one-round peer stall only delays the arming *)
      check_fault "SYS_read@attacker#1=stall" ~expect_armed:true;
      (* a failed accept orphans the trigger channel entirely *)
      check_fault "SYS_accept#1=enoent" ~expect_armed:false)

(* ------------------------------------------------------------------ *)
(* tick budgets: truncation degrades, never flips (satellite: fix)     *)

let budget_case =
  Alcotest.test_case "budget expiring before the trigger degrades"
    `Quick (fun () ->
      let sc = find "sleeper daemon triggered" in
      (* control: the un-budgeted run completes and convicts *)
      let full = Hth.Session.run sc.sc_setup in
      Alcotest.(check bool) "control convicts" true
        (full.max_severity = Some Secpert.Severity.High);
      Alcotest.(check (list string)) "control not degraded" []
        full.degraded;
      let budgets =
        { Hth.Session.no_budgets with b_ticks = Some 1500 }
      in
      match Hth.Session.run_outcome ~budgets sc.sc_setup with
      | Error e ->
        Alcotest.failf "budgeted run errored: %s" (Hth.Error.to_string e)
      | Ok r ->
        (* the trigger never arrived: no spurious conviction... *)
        Alcotest.(check bool) "no verdict flip" true
          (r.max_severity = None);
        Alcotest.(check int) "no warnings" 0 (List.length r.warnings);
        (* ...but the truncation is declared *)
        Alcotest.(check bool) "degraded" true (r.degraded <> []);
        Alcotest.(check bool) "reason names the tick budget" true
          (List.exists (fun m -> contains m "tick budget") r.degraded))

(* ------------------------------------------------------------------ *)
(* serve: dormant verdicts over the wire (satellite)                   *)

let resolver name =
  Option.map
    (fun (sc : Guest.Scenario.t) ->
      { Fleet.Serve.t_setup = sc.sc_setup;
        t_expected = Guest.Scenario.expected_label sc.sc_expected;
        t_matches = Guest.Scenario.matches sc.sc_expected })
    (Guest.Corpus.find name)

let serve_once lines =
  let pending = ref lines in
  let out = ref [] in
  let n =
    Fleet.Serve.run ~jobs:2 ~resolver
      ~input:(fun () ->
        match !pending with
        | [] -> None
        | l :: rest ->
          pending := rest;
          Some l)
      ~output:(fun line -> out := line :: !out)
      ()
  in
  n, List.rev !out

let serve_field line k =
  match Forensics.Jsonl.parse_line line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e
  | Ok fields -> List.assoc_opt k fields

let serve_str line k =
  match serve_field line k with
  | Some (Forensics.Jsonl.Str s) -> s
  | _ -> Alcotest.failf "missing string field %S in %s" k line

let serve_case =
  Alcotest.test_case "serve returns hth_run's warnings, in order" `Quick
    (fun () ->
      let script =
        [ {|{"scenario":"sleeper daemon triggered"}|};
          {|{"scenario":"ls"}|};
          {|{"scenario":"update client triggered"}|};
          {|{"scenario":"sleeper daemon idle"}|} ]
      in
      let n, out = serve_once script in
      Alcotest.(check int) "responses" 4 n;
      List.iteri
        (fun i line ->
          match serve_field line "seq" with
          | Some (Forensics.Jsonl.Int s) ->
            Alcotest.(check int) "in-order across interleaving" i s
          | _ -> Alcotest.failf "missing seq in %s" line)
        out;
      let direct_findings name =
        let r = Guest.Scenario.run (find name) in
        String.concat "\n"
          (List.map Secpert.Warning.to_string r.distinct)
      in
      (match out with
       | [ a; b; c; d ] ->
         Alcotest.(check string) "triggered verdict" "suspicious[HIGH]"
           (serve_str a "verdict");
         (* the served findings are byte-identical to a direct run's *)
         Alcotest.(check string) "sleeper findings"
           (direct_findings "sleeper daemon triggered")
           (serve_str a "findings");
         Alcotest.(check bool) "findings carry the trigger note" true
           (contains (serve_str a "findings") "trigger-gated");
         Alcotest.(check string) "trusted program stays clean" "benign"
           (serve_str b "verdict");
         Alcotest.(check string) "update findings"
           (direct_findings "update client triggered")
           (serve_str c "findings");
         Alcotest.(check string) "idle mode over the wire" "benign"
           (serve_str d "verdict");
         Alcotest.(check string) "idle has no findings" ""
           (serve_str d "findings")
       | _ -> Alcotest.fail "expected four responses");
      let _, out2 = serve_once script in
      Alcotest.(check (list string)) "service is deterministic" out out2)

let suite =
  [ modes_case; trigger_evidence_case; armed_path_case;
    fleet_determinism_case; automaton_case; fault_matrix_case;
    budget_case; serve_case;
    QCheck_alcotest.to_alcotest no_false_arming_prop ]
