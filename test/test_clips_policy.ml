(* The textual CLIPS policy (Policy_clips) must agree with the native
   OCaml policy on every scenario in the evaluation corpus: same verdict
   (max severity), and the same rule families firing. *)

let check = Alcotest.(check bool)
let sp = Taint.Space.create ()

let sev_label = function
  | None -> "benign"
  | Some s -> Secpert.Severity.label s

let test_corpus_equivalence () =
  let mismatches =
    List.filter_map
      (fun (sc : Guest.Scenario.t) ->
        let native = Hth.Session.run sc.sc_setup in
        let clips =
          Hth.Session.run ~policy:Secpert.System.Clips sc.sc_setup
        in
        if native.max_severity = clips.max_severity then None
        else
          Some
            (Fmt.str "%s: native=%s clips=%s" sc.sc_name
               (sev_label native.max_severity)
               (sev_label clips.max_severity)))
      Guest.Corpus.all
  in
  if mismatches <> [] then
    Alcotest.failf "policies disagree:\n%s" (String.concat "\n" mismatches)

let test_clips_policy_loads () =
  (* loading must install every rule without parse errors *)
  let s = Secpert.System.create ~policy:Secpert.System.Clips () in
  ignore (Secpert.System.engine s)

let judge_clips e =
  let s = Secpert.System.create ~policy:Secpert.System.Clips () in
  ignore (Secpert.System.handle_event s e);
  Secpert.System.max_severity s

let meta : Harrier.Events.meta =
  { pid = 1; time = 100; freq = 3; addr = 0; step = 0 }

let test_clips_execve_severities () =
  let exec origin =
    Harrier.Events.Exec
      { path =
          { r_kind = Harrier.Events.R_file; r_name = "/bin/x";
            r_origin = (Taint.Tagset.of_list sp) origin };
        argv = []; meta }
  in
  check "hardcoded low" true
    (judge_clips (exec [ Taint.Source.Binary "/mal" ])
     = Some Secpert.Severity.Low);
  check "socket high" true
    (judge_clips (exec [ Taint.Source.Socket "evil:1" ])
     = Some Secpert.Severity.High);
  check "user silent" true
    (judge_clips (exec [ Taint.Source.User_input ]) = None);
  check "trusted silent" true
    (judge_clips (exec [ Taint.Source.Binary "/lib/libc.so" ]) = None)

let test_clips_rare_escalation () =
  let exec =
    Harrier.Events.Exec
      { path =
          { r_kind = Harrier.Events.R_file; r_name = "/bin/x";
            r_origin = (Taint.Tagset.singleton sp) (Taint.Source.Binary "/mal") };
        argv = [];
        meta = { pid = 1; time = 9_000; freq = 1; addr = 0; step = 0 } }
  in
  check "rare+late medium" true
    (judge_clips exec = Some Secpert.Severity.Medium)

let test_clips_transfer_join () =
  (* the multi-pattern join: per-source facts joined on the xfer slot *)
  let transfer =
    Harrier.Events.Transfer
      { call = "SYS_write";
        data = (Taint.Tagset.singleton sp) (Taint.Source.File "/a");
        head = "";
        sources =
          [ Taint.Source.File "/a",
            (Taint.Tagset.singleton sp) (Taint.Source.Binary "/mal") ];
        guard = [];
        target =
          { r_kind = Harrier.Events.R_file; r_name = "/t";
            r_origin = (Taint.Tagset.singleton sp) (Taint.Source.Binary "/mal") };
        via_server = None; len = 4; meta }
  in
  check "both hardcoded high" true
    (judge_clips transfer = Some Secpert.Severity.High)

let test_clips_content_rule () =
  let transfer head =
    Harrier.Events.Transfer
      { call = "SYS_write";
        data = (Taint.Tagset.singleton sp) (Taint.Source.Socket "h:1");
        head;
        sources = [ Taint.Source.Socket "h:1", Taint.Tagset.empty ];
        guard = [];
        target =
          { r_kind = Harrier.Events.R_file; r_name = "/t";
            r_origin = Taint.Tagset.empty };
        via_server = None; len = 4; meta }
  in
  check "MZ caught" true
    (judge_clips (transfer "MZ\x90") = Some Secpert.Severity.High);
  check "text silent" true (judge_clips (transfer "hello") = None)

let suite =
  [ Alcotest.test_case "clips policy loads" `Quick test_clips_policy_loads;
    Alcotest.test_case "clips execve severities" `Quick
      test_clips_execve_severities;
    Alcotest.test_case "clips rare escalation" `Quick
      test_clips_rare_escalation;
    Alcotest.test_case "clips transfer join" `Quick
      test_clips_transfer_join;
    Alcotest.test_case "clips content rule" `Quick test_clips_content_rule;
    Alcotest.test_case "corpus equivalence with native policy" `Slow
      test_corpus_equivalence ]
