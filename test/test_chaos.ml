(* Chaos harness: the corpus under seeded fault injection and resource
   budgets.

   Three guarantees are checked (ISSUE 3's chaos gate):
   - no exception escapes [Session.run_outcome] under any fault plan —
     failures come back as typed [Hth.Error.t] values;
   - faulted runs are deterministic: the same (scenario, seed) produces
     a byte-identical JSONL trace;
   - degradation is monotone: a budgeted (over-tainting) run may add
     warnings relative to the unbudgeted run but never loses one, and
     the result is flagged degraded whenever the budget actually
     tripped.

   The quick suite covers a representative scenario slice; setting
   CHAOS_CORPUS=full (the scripts/check.sh gate) widens the no-escape
   and determinism checks to the whole corpus. *)

let seeds = [ 1; 2; 3; 7; 42 ]

let quick_names =
  [ "pma"; "grabem"; "superforker"; "text download"; "vixie crontab";
    "stealth dropper";
    (* trigger-gated payloads: faults on the trigger channel must
       degrade or delay the arming, never escape or flip nondetermin-
       istically *)
    "sleeper daemon triggered"; "worm pair triggered";
    "update client triggered" ]

let full_corpus () =
  match Sys.getenv_opt "CHAOS_CORPUS" with
  | Some "full" -> true
  | Some _ | None -> false

let scenarios () =
  if full_corpus () then Guest.Corpus.all
  else
    List.filter_map Guest.Corpus.find quick_names

(* ------------------------------------------------------------------ *)
(* No escaped exceptions                                               *)

let test_no_escape () =
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      List.iter
        (fun seed ->
          match
            Hth.Session.run_outcome ~fault:(Osim.Fault.seeded seed)
              sc.sc_setup
          with
          | Ok _ -> ()
          | Error e ->
            (* a typed error is an acceptable isolated outcome; an
               exception here would fail the test *)
            Fmt.epr "%s seed %d: %a@." sc.sc_name seed Hth.Error.pp e
          | exception e ->
            Alcotest.failf "%s seed %d: escaped exception %s" sc.sc_name
              seed (Printexc.to_string e))
        seeds)
    (scenarios ())

(* ------------------------------------------------------------------ *)
(* Trace determinism under faults                                      *)

let traced_run sc seed =
  let buf = Buffer.create 4096 in
  Obs.Trace.to_buffer buf;
  Fun.protect ~finally:Obs.Trace.disable (fun () ->
      ignore
        (Hth.Session.run_outcome ~fault:(Osim.Fault.seeded seed)
           (sc : Guest.Scenario.t).sc_setup));
  Buffer.contents buf

let test_trace_deterministic () =
  let scs =
    if full_corpus () then Guest.Corpus.all
    else List.filter_map Guest.Corpus.find [ "pma"; "grabem" ]
  in
  List.iter
    (fun (sc : Guest.Scenario.t) ->
      List.iter
        (fun seed ->
          let a = traced_run sc seed and b = traced_run sc seed in
          Alcotest.(check bool)
            (Fmt.str "%s seed %d: identical traces for identical seeds"
               sc.sc_name seed)
            true (String.equal a b);
          Alcotest.(check bool)
            (Fmt.str "%s seed %d: trace non-empty" sc.sc_name seed)
            false
            (String.length a = 0))
        seeds)
    scs

(* ------------------------------------------------------------------ *)
(* Degradation is monotone                                             *)

let warning_keys (r : Hth.Session.result) =
  (* compare (rule, severity) pairs: over-tainting widens the tag sets
     rendered inside warning messages, so message text is not stable
     across degraded runs — the rule that fired and its severity are *)
  List.sort_uniq compare
    (List.map
       (fun (w : Secpert.Warning.t) -> w.rule, w.severity)
       r.warnings)

let budgeted_setup name pages =
  match Guest.Corpus.find name with
  | None -> Alcotest.failf "unknown scenario %s" name
  | Some sc ->
    let exact =
      match Hth.Session.run_outcome sc.sc_setup with
      | Ok r -> r
      | Error e -> Alcotest.failf "%s unbudgeted: %a" name Hth.Error.pp e
    in
    let budgets =
      { Hth.Session.no_budgets with b_shadow_pages = Some pages }
    in
    let degraded =
      match Hth.Session.run_outcome ~budgets sc.sc_setup with
      | Ok r -> r
      | Error e -> Alcotest.failf "%s budgeted: %a" name Hth.Error.pp e
    in
    exact, degraded

let monotone_names =
  [ "pma"; "grabem"; "ElmExploit"; "text download"; "stealth dropper";
    "env exfiltration" ]

let prop_degradation_monotone =
  QCheck.Test.make ~count:12 ~name:"budgeted run never loses a warning"
    QCheck.(pair (int_range 0 (List.length monotone_names - 1))
              (int_range 1 6))
    (fun (i, pages) ->
      let name = List.nth monotone_names i in
      let exact, degraded = budgeted_setup name pages in
      let ek = warning_keys exact and dk = warning_keys degraded in
      List.for_all (fun k -> List.mem k dk) ek
      ||
      QCheck.Test.fail_reportf
        "%s pages=%d lost warnings: exact %d keys, degraded %d keys" name
        pages (List.length ek) (List.length dk))

let test_degraded_flagged () =
  (* a 1-page budget must actually trip on a dataflow-heavy scenario,
     and the trip must surface in [result.degraded] *)
  let _, degraded = budgeted_setup "pma" 1 in
  Alcotest.(check bool) "degraded flagged" true (degraded.degraded <> []);
  let exact, _ = budgeted_setup "pma" 1 in
  Alcotest.(check bool) "unbudgeted run not flagged" true
    (exact.degraded = [])

(* ------------------------------------------------------------------ *)
(* Flag parsing                                                        *)

let check_err name r =
  match r with
  | Error (_ : string) -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name

let test_fault_parse_errors () =
  check_err "no kind" (Osim.Fault.parse "SYS_open");
  check_err "bad kind" (Osim.Fault.parse "SYS_open=bogus");
  check_err "empty call" (Osim.Fault.parse "=enoent");
  check_err "bad occurrence" (Osim.Fault.parse "SYS_open#0=enoent");
  check_err "non-numeric occurrence" (Osim.Fault.parse "SYS_open#x=eio");
  check_err "empty resource" (Osim.Fault.parse "SYS_open@=eio");
  check_err "empty plan" (Osim.Fault.parse "");
  (match Osim.Fault.parse "SYS_open@/etc/passwd#2=enoent,*=short" with
   | Ok p ->
     Alcotest.(check string) "round trip"
       "SYS_open@/etc/passwd#2=enoent,*=short" (Osim.Fault.to_string p)
   | Error e -> Alcotest.fail e)

let test_budget_parse_errors () =
  check_err "no =" (Hth.Session.parse_budgets [ "ticks" ]);
  check_err "bad key" (Hth.Session.parse_budgets [ "cpu=5" ]);
  check_err "bad value" (Hth.Session.parse_budgets [ "wm=abc" ]);
  check_err "zero" (Hth.Session.parse_budgets [ "warnings=0" ]);
  check_err "negative" (Hth.Session.parse_budgets [ "ticks=-3" ]);
  match Hth.Session.parse_budgets [ "ticks=100"; "shadow-pages=4" ] with
  | Ok b ->
    Alcotest.(check (option int)) "ticks" (Some 100) b.b_ticks;
    Alcotest.(check (option int)) "pages" (Some 4) b.b_shadow_pages;
    Alcotest.(check (option int)) "wm unset" None b.b_wm_facts
  | Error e -> Alcotest.fail e

(* The hth_run converters reject malformed SPECs at the command line;
   replicate that wiring with cmdliner itself so a regression in either
   the parser or the converter plumbing fails here, not in CI scripts. *)
let cmdliner_eval argv =
  let open Cmdliner in
  let fault_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Osim.Fault.parse s) in
    Arg.conv (parse, fun ppf p -> Fmt.string ppf (Osim.Fault.to_string p))
  in
  let budget_conv =
    let parse s =
      match Hth.Session.parse_budgets [ s ] with
      | Ok _ -> Ok s
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, Fmt.string)
  in
  let fault = Arg.(value & opt (some fault_conv) None & info [ "fault-plan" ])
  and budgets = Arg.(value & opt_all budget_conv [] & info [ "budget" ]) in
  let term = Term.(const (fun _ _ -> ()) $ fault $ budgets) in
  Cmd.eval_value ~argv:(Array.of_list ("chaos" :: argv)) (Cmd.v (Cmd.info "chaos") term)

let test_cmdliner_parse_errors () =
  let ok = function Ok (`Ok ()) -> true | _ -> false in
  Alcotest.(check bool) "good plan accepted" true
    (ok (cmdliner_eval [ "--fault-plan"; "SYS_open=enoent" ]));
  Alcotest.(check bool) "good budget accepted" true
    (ok (cmdliner_eval [ "--budget"; "wm=10"; "--budget"; "ticks=5" ]));
  (match cmdliner_eval [ "--fault-plan"; "SYS_open=bogus" ] with
   | Error `Parse -> ()
   | _ -> Alcotest.fail "bad fault kind must be a cmdliner parse error");
  (match cmdliner_eval [ "--budget"; "wm=abc" ] with
   | Error `Parse -> ()
   | _ -> Alcotest.fail "bad budget must be a cmdliner parse error")

let suite =
  [ Alcotest.test_case "corpus x seeds: no escaped exception" `Quick
      test_no_escape;
    Alcotest.test_case "faulted traces deterministic" `Quick
      test_trace_deterministic;
    QCheck_alcotest.to_alcotest prop_degradation_monotone;
    Alcotest.test_case "degraded runs are flagged" `Quick
      test_degraded_flagged;
    Alcotest.test_case "fault plan parse errors" `Quick
      test_fault_parse_errors;
    Alcotest.test_case "budget parse errors" `Quick test_budget_parse_errors;
    Alcotest.test_case "cmdliner rejects malformed flags" `Quick
      test_cmdliner_parse_errors ]
