(* Golden-trace regression harness.

   Each scenario below has a committed JSONL trace under test/golden/
   (regenerate with
     dune exec bin/hth_run.exe -- run <scenario> --trace test/golden/<file>
   — see EXPERIMENTS.md).  Every test runs the scenario TWICE and first
   checks the two live traces are byte-identical: the simulator is
   deterministic and the trace must never depend on wall-clock time,
   hash order or anything else that varies between runs.  Only then is
   the live trace diffed against the golden file, with a line-level
   report on mismatch. *)

let golden_scenarios =
  [ (* the seven real exploits of Table 8 *)
    "ElmExploit"; "nlspath"; "procex"; "grabem"; "vixie crontab"; "pma";
    "superforker";
    (* two trusted programs: goldens also pin the *absence* of events *)
    "ls"; "column";
    (* dormant trojans: every family in all three modes, so the goldens
       pin both the armed behaviour and the quiet modes' silence *)
    "sleeper daemon idle"; "sleeper daemon triggered";
    "sleeper daemon disarmed"; "logic bomb idle"; "logic bomb triggered";
    "logic bomb defused"; "worm pair idle"; "worm pair triggered";
    "worm pair recalled"; "update client idle"; "update client triggered";
    "update client rejected" ]

let golden_file name =
  let sanitized = String.map (fun c -> if c = ' ' then '_' else c) name in
  Filename.concat "golden" (sanitized ^ ".jsonl")

(* Run [sc] with the JSONL sink captured to a buffer; always restore the
   no-op sink. *)
let capture (sc : Guest.Scenario.t) =
  let buf = Buffer.create 4096 in
  Obs.Trace.to_buffer buf;
  Fun.protect ~finally:Obs.Trace.disable (fun () ->
      ignore (Hth.Session.run sc.sc_setup));
  Buffer.contents buf

let scenario_case name =
  Alcotest.test_case name `Quick (fun () ->
      let sc =
        match Guest.Corpus.find name with
        | Some sc -> sc
        | None -> Alcotest.failf "scenario %S missing from corpus" name
      in
      let first = capture sc in
      let second = capture sc in
      (match Hth.Golden.first_divergence ~expected:first ~actual:second with
       | None -> ()
       | Some d ->
         Alcotest.failf "nondeterministic trace!@.%s"
           (Hth.Golden.report ~name:(name ^ " (run 1 vs run 2)") d));
      match Hth.Golden.compare_file ~golden:(golden_file name) ~actual:first
      with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf
          "%s@.(if the change to the trace is intended, regenerate — see \
           EXPERIMENTS.md)"
          msg)

(* ------------------------------------------------------------------ *)
(* The comparator itself                                               *)

let div_opt =
  Alcotest.testable
    (fun ppf -> function
      | None -> Fmt.string ppf "<equal>"
      | Some (d : Hth.Golden.divergence) ->
        Fmt.pf ppf "line %d: %a / %a" d.line
          Fmt.(option ~none:(any "-") (quote string))
          d.expected
          Fmt.(option ~none:(any "-") (quote string))
          d.actual)
    (fun a b ->
      match a, b with
      | None, None -> true
      | Some (a : Hth.Golden.divergence), Some b ->
        a.line = b.line && a.expected = b.expected && a.actual = b.actual
      | _ -> false)

let comparator_unit_case =
  Alcotest.test_case "first_divergence" `Quick (fun () ->
      let check msg want ~expected ~actual =
        Alcotest.check div_opt msg want
          (Hth.Golden.first_divergence ~expected ~actual)
      in
      check "equal" None ~expected:"a\nb\n" ~actual:"a\nb\n";
      check "differing middle line"
        (Some { Hth.Golden.line = 2; expected = Some "b"; actual = Some "x" })
        ~expected:"a\nb\nc\n" ~actual:"a\nx\nc\n";
      check "live trace too short"
        (Some { Hth.Golden.line = 2; expected = Some "b"; actual = None })
        ~expected:"a\nb\n" ~actual:"a\n";
      check "live trace too long"
        (Some { Hth.Golden.line = 3; expected = None; actual = Some "c" })
        ~expected:"a\nb\n" ~actual:"a\nb\nc\n";
      check "same lines, missing trailing newline"
        (Some { Hth.Golden.line = 3; expected = None; actual = None })
        ~expected:"a\nb\n" ~actual:"a\nb")

(* Failure path end to end: corrupt a copy of a real golden file in a
   temp dir and check the report names the first divergent line. *)
let comparator_failure_case =
  Alcotest.test_case "comparator reports divergent line" `Quick (fun () ->
      let live = Hth.Golden.read_file (golden_file "pma") in
      let corrupt_line = 3 in
      let corrupted =
        String.split_on_char '\n' live
        |> List.mapi (fun i l ->
               if i = corrupt_line - 1 then l ^ "-CORRUPTED" else l)
        |> String.concat "\n"
      in
      let tmp = Filename.temp_file "hth_golden" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin tmp in
          output_string oc corrupted;
          close_out oc;
          match Hth.Golden.compare_file ~golden:tmp ~actual:live with
          | Ok () -> Alcotest.fail "corrupted golden compared as equal"
          | Error msg ->
            let has affix = Astring.String.is_infix ~affix msg in
            Alcotest.(check bool)
              (Fmt.str "report names line %d: %s" corrupt_line msg)
              true
              (has (Fmt.str "diverge at line %d" corrupt_line));
            Alcotest.(check bool) "report names the golden file" true
              (has tmp));
      (* an unreadable golden is an error, not a crash *)
      match
        Hth.Golden.compare_file ~golden:(tmp ^ ".does-not-exist") ~actual:""
      with
      | Ok () -> Alcotest.fail "missing golden compared as equal"
      | Error msg ->
        Alcotest.(check bool) "missing golden reported" true
          (Astring.String.is_infix ~affix:"unreadable" msg))

let suite =
  comparator_unit_case :: comparator_failure_case
  :: List.map scenario_case golden_scenarios
